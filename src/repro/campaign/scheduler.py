"""The fault-tolerant campaign scheduler.

The scheduler owns campaign *policy* — launch order, retry budgets,
backoff, quarantine, journaling — and delegates the *mechanics* of
running a cell attempt to a pluggable execution backend
(:mod:`repro.campaign.backends`).  Under the default
:class:`~repro.campaign.backends.LocalPoolBackend`, each cell attempt
runs in its *own* forked worker process, which buys three properties
the plain :class:`~concurrent.futures.ProcessPoolExecutor`
cannot offer:

- **timeout enforcement** — a cell that exceeds its budget is
  terminated, not merely abandoned;
- **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) fails only its own cell; the scheduler keeps draining the
  rest of the sweep;
- **bounded retry + quarantine** — a failed cell is retried with
  exponential backoff up to ``max_attempts`` total attempts, then
  quarantined: journaled as an explicit gap that the report renders as
  such instead of the whole sweep dying at cell 400/500.

Every transition is journaled *before* the next action is taken, so a
``kill -9`` of the scheduler itself loses at most the in-flight cells,
which replay as pending.  Successful workers ship their telemetry
snapshots back over the result pipe and the parent folds them into the
active registry/profile (completion order), alongside the campaign's
own ``campaign_cells_{completed,retried,quarantined}_total`` counters
and ``campaign.cell.*`` trace events.
"""

import heapq
import time

from repro.campaign.backends import LocalPoolBackend, cell_usage
from repro.campaign.spec import resolve_cell_fn
from repro.obs import events, tracectx
from repro.obs.context import get_metrics, get_phases, get_tracer

#: Total attempts (first try + retries) before a cell is quarantined.
DEFAULT_MAX_ATTEMPTS = 3

#: First-retry backoff in seconds; doubles per subsequent attempt.
DEFAULT_BACKOFF = 0.5

#: How long the scheduler sleeps waiting for worker events.
_POLL_SECONDS = 0.05

#: Backwards-compatible alias (the worker helpers moved to
#: :mod:`repro.campaign.backends` with the backend extraction).
_cell_usage = cell_usage


def _analysis_cache_stats(metrics_snapshot):
    """Per-cell analysis-cache counters, for the journal's reuse view."""

    def value(name):
        entry = metrics_snapshot.get(name)
        return int(entry["value"]) if entry else 0

    return {
        "analysis_hits": value("analysis_cache_hits_total"),
        "analysis_misses": value("analysis_cache_misses_total"),
    }


class Scheduler:
    """Drains a campaign's pending cells through an execution backend."""

    def __init__(self, spec, journal, jobs=1,
                 max_attempts=DEFAULT_MAX_ATTEMPTS,
                 backoff=DEFAULT_BACKOFF, cell_timeout=None,
                 sim_engine=None, backend=None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.spec = spec
        self.journal = journal
        self.jobs = jobs
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.cell_timeout = cell_timeout
        #: Timing-simulator engine for cell workers (None = inherit
        #: the process default; stats are engine-independent).
        self.sim_engine = sim_engine
        #: Execution backend (see :mod:`repro.campaign.backends`);
        #: the default local fork-per-cell pool is journal-identical
        #: to the pre-backend scheduler.
        self.backend = backend if backend is not None \
            else LocalPoolBackend()
        self._fn = resolve_cell_fn(spec.cell)
        #: Optional parent-side warm hook (``fn.prepare``): builds the
        #: cell's artifacts and shared analysis before forking, so all
        #: cells of one (benchmark, input set) inherit one
        #: AnalysisManager entry via copy-on-write.
        self._prepare = getattr(self._fn, "prepare", None)

    def run(self, state, max_cells=None):
        """Drain pending cells; returns a summary dict.

        ``state`` is the replayed :class:`~repro.campaign.journal.JournalState`
        (fresh campaigns pass an empty one); completed and quarantined
        cells are skipped, and prior failed attempts count toward the
        quarantine budget.  Cells the backend does not own (other
        shards' work) are skipped entirely — they are neither run nor
        counted as pending.  ``max_cells`` stops after that many cell
        completions this session (the deterministic stand-in for an
        interrupted run, used by tests and the CI smoke job).
        """
        pending = [
            cell for cell in state.pending_cells(self.spec)
            if self.backend.owns(cell)
        ]
        failures = dict(state.failures)
        results = dict(state.results)
        quarantined = set(state.quarantined)
        queue = list(pending)
        queue.reverse()  # pop() from the end == spec order
        retries = []     # heap of (ready_at, seq, cell)
        running = {}     # cell_id -> _Attempt
        session_completed = 0
        interrupted = False
        seq = 0

        def launch_allowed():
            if max_cells is None:
                return True
            return session_completed + len(running) < max_cells

        try:
            while queue or retries or running:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, cell = heapq.heappop(retries)
                    queue.append(cell)
                while (queue and len(running) < self.jobs
                       and launch_allowed()):
                    cell = queue.pop()
                    attempt = failures.get(cell.cell_id, 0) + 1
                    running[cell.cell_id] = self._launch(cell, attempt)
                if not running:
                    if max_cells is not None \
                            and session_completed >= max_cells \
                            and (queue or retries):
                        interrupted = True
                        break
                    if queue:
                        continue
                    if retries:
                        time.sleep(
                            min(_POLL_SECONDS,
                                max(0.0, retries[0][0] - now))
                        )
                        continue
                    break
                for task in self._reap(running):
                    outcome = self._settle(task)
                    if outcome["ok"]:
                        results[task.cell.cell_id] = outcome["result"]
                        session_completed += 1
                        continue
                    failures[task.cell.cell_id] = task.attempt
                    if task.attempt >= self.max_attempts:
                        self._quarantine(task)
                        quarantined.add(task.cell.cell_id)
                    else:
                        get_metrics().counter(
                            "campaign_cells_retried_total"
                        ).inc()
                        delay = self.backoff * (2 ** (task.attempt - 1))
                        seq += 1
                        heapq.heappush(
                            retries,
                            (time.monotonic() + delay, seq, task.cell),
                        )
        except BaseException:
            interrupted = True
            raise
        finally:
            self.backend.terminate(running.values())
        return {
            "results": results,
            "failures": failures,
            "quarantined": quarantined,
            "session_completed": session_completed,
            "pending": len(queue) + len(retries),
            "interrupted": interrupted or bool(queue or retries),
        }

    # -- internals ----------------------------------------------------

    def _launch(self, cell, attempt):
        if self._prepare is not None:
            try:
                self._prepare(cell.params)
            except Exception:
                # Warming is an optimization; if it fails, the cell
                # attempt itself will surface (and journal) the error
                # with the usual retry/quarantine handling.
                pass
        self.journal.cell_start(cell.cell_id, attempt)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(events.CampaignCellStart(
                campaign=self.spec.name, cell_id=cell.cell_id,
                label=cell.label(), attempt=attempt,
            ))
        ctx = tracectx.current()
        trace = None
        if ctx is not None:
            trace = ctx.propagation(
                attrs={"cell_id": cell.cell_id, "attempt": attempt}
            )
        return self.backend.launch(
            self._fn, cell, attempt, sim_engine=self.sim_engine,
            trace=trace,
        )

    def _reap(self, running):
        """Attempts that finished, crashed, or timed out this tick."""
        done = self.backend.wait(running.values(), _POLL_SECONDS)
        now = time.monotonic()
        for task in running.values():
            if task in done:
                continue
            timed_out = (self.cell_timeout is not None
                         and now - task.started > self.cell_timeout)
            if timed_out or not self.backend.alive(task):
                done.append(task)
        for task in done:
            del running[task.cell.cell_id]
        return done

    def _settle(self, task):
        """Classify one finished attempt; journal and count it."""
        elapsed = time.monotonic() - task.started
        timed_out = (self.cell_timeout is not None
                     and elapsed > self.cell_timeout
                     and self.backend.alive(task))
        payload = self.backend.collect(task)
        if timed_out:
            # The budget was blown while the worker still ran; any
            # payload it raced in on the way down is discarded.
            payload = None

        cell_id = task.cell.cell_id
        if payload is not None and payload.get("ok"):
            get_metrics().merge_snapshot(payload["metrics"])
            spans_snapshot = payload.get("spans")
            if spans_snapshot is not None:
                # Full hierarchical snapshot; the flat phase view
                # follows from it (merging both would double count).
                get_phases().merge_spans(spans_snapshot)
            else:
                get_phases().merge_snapshot(payload["phases"])
            result = payload["result"]
            # The ledger summary is a journal *annotation* (like the
            # cache counters), not part of the deterministic report
            # payload — pop it so resumed and fresh runs journal
            # byte-identical results.
            ledger_summary = (
                result.pop("ledger", None)
                if isinstance(result, dict) else None
            )
            self.journal.cell_finish(
                cell_id, task.attempt, elapsed, result,
                cache=_analysis_cache_stats(payload["metrics"]),
                ledger=ledger_summary,
                resources=payload.get("resources"),
            )
            get_metrics().counter("campaign_cells_completed_total").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(events.CampaignCellEnd(
                    campaign=self.spec.name, cell_id=cell_id,
                    attempt=task.attempt, seconds=elapsed,
                ))
            return {"ok": True, "result": payload["result"]}

        if timed_out:
            kind, error = "timeout", (
                f"cell exceeded {self.cell_timeout}s budget"
            )
        elif payload is not None:
            kind, error = "exception", payload.get("error", "unknown")
        else:
            kind, error = "crash", (
                f"worker died with exit code "
                f"{self.backend.exitcode(task)}"
            )
        self.journal.cell_fail(cell_id, task.attempt, kind, error, elapsed)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(events.CampaignCellFail(
                campaign=self.spec.name, cell_id=cell_id,
                attempt=task.attempt, kind=kind, error=error,
            ))
        return {"ok": False, "kind": kind, "error": error}

    def _quarantine(self, task):
        self.journal.cell_quarantine(task.cell.cell_id, task.attempt)
        get_metrics().counter("campaign_cells_quarantined_total").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(events.CampaignCellQuarantined(
                campaign=self.spec.name, cell_id=task.cell.cell_id,
                attempts=task.attempt,
            ))
