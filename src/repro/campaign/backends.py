"""Pluggable campaign execution backends.

The scheduler (:mod:`repro.campaign.scheduler`) owns campaign *policy*
— retry budgets, backoff, quarantine, journaling — while a
:class:`Backend` owns the *mechanics* of running one cell attempt
somewhere and shipping its payload back.  The split follows the
``Pool``/``PrunPool`` shape of vusec's instrumentation-infra: the same
job stream runs locally or across machines behind one interface.

Two backends ship here:

- :class:`LocalPoolBackend` — the default; one forked worker process
  per cell attempt with a result pipe, exactly the mechanics the
  scheduler used inline before the extraction (journals are
  bit-identical to pre-backend runs);
- :class:`ShardedBackend` — a :class:`LocalPoolBackend` that *owns*
  only the cells whose content-hashed ID lands in its shard
  (``int(cell_id, 16) % shards == shard_index``).  N machines each run
  one shard of the same spec into their own shard journal
  (``journal.shard-I-of-N.jsonl``) and :func:`merge_journals`
  recombines them into the single ``journal.jsonl`` a single-box run
  would have produced — ``campaign report`` over the merged journal is
  byte-identical to the unsharded report, because the report renders
  only from (spec, results) and shard ownership is a pure partition of
  the cell-ID space.

A backend implements:

``owns(cell)``
    Does this backend instance execute this cell?  The scheduler skips
    cells it does not own (they are some other shard's work, not gaps).
``launch(fn, cell, attempt, sim_engine=None, trace=None)``
    Start one attempt (``trace`` is the optional distributed-trace
    propagation payload); returns a :class:`WorkerHandle`.
``wait(handles, timeout)``
    Block up to ``timeout`` seconds; return the handles with a result
    ready (liveness/timeout sweeps stay in the scheduler).
``collect(handle)``
    Reap one finished/killed attempt: terminate if needed, join, close,
    and return the worker payload dict (or ``None`` for a crash).
``alive(handle)`` / ``terminate(handles)``
    Liveness probe and end-of-run cleanup.
"""

import multiprocessing
import time
from multiprocessing.connection import wait as connection_wait

from repro.campaign.journal import JOURNAL_NAME
from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import PhaseProfile

#: Registered backend names (see :func:`make_backend`).
BACKENDS = ("local", "sharded")


def cell_usage():
    """CPU time and peak RSS of this worker process, for the journal.

    Meaningful per cell because every attempt runs in its own forked
    process (``RUSAGE_SELF`` covers exactly this cell's work plus the
    negligible fork preamble).  Returns None on platforms without
    :mod:`resource`.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover — POSIX-only module
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "user_seconds": round(usage.ru_utime, 6),
        "system_seconds": round(usage.ru_stime, 6),
        "max_rss_kb": int(usage.ru_maxrss),
    }


def cell_worker(conn, fn, params, sim_engine=None, trace=None):
    """Run one cell under fresh telemetry; ship outcome over the pipe.

    ``trace`` is an optional distributed-trace propagation payload
    (:meth:`~repro.obs.tracectx.TraceContext.propagation`); when
    present the cell runs inside a ``cell`` span parented to the
    scheduler's campaign span, spooled to the shared trace directory —
    so a 2-shard run merges into one cross-process timeline.  When
    absent (tracing off) the worker behaves exactly as before and the
    journal stays byte-identical.
    """
    import signal

    from repro.obs import tracectx
    from repro.obs.context import telemetry
    from repro.obs.spans import span

    # Forked workers inherit the CLI's graceful-exit SIGTERM handler;
    # restore the default so a post-collect terminate() kills the
    # worker silently instead of raising through conn.send.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if sim_engine is not None:
        # Set explicitly rather than relying on fork inheritance, so
        # the engine choice survives a switch to a spawn context.
        from repro.uarch import set_default_engine

        set_default_engine(sim_engine)
    ctx = tracectx.TraceContext.from_propagation(
        trace, service="campaign-worker"
    )
    registry = MetricsRegistry()
    phases = PhaseProfile()
    try:
        with telemetry(metrics=registry, phases=phases):
            if ctx is not None:
                with tracectx.activate(ctx):
                    with span("cell"):
                        result = fn(params)
            else:
                result = fn(params)
        payload = {
            "ok": True,
            "result": result,
            "metrics": registry.as_dict(),
            "phases": phases.as_dict(),
            "spans": phases.spans_as_dict(),
            "resources": cell_usage(),
        }
    except BaseException as exc:  # noqa: BLE001 — must reach the parent
        payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    try:
        conn.send(payload)
    finally:
        conn.close()


class WorkerHandle:
    """One live worker process for one cell attempt."""

    __slots__ = ("cell", "attempt", "process", "conn", "started")

    def __init__(self, cell, attempt, process, conn):
        self.cell = cell
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = time.monotonic()


class LocalPoolBackend:
    """Fork-per-attempt execution on this machine (the default).

    The fork context buys crash isolation and hard timeout enforcement
    (a stuck worker is terminated, not abandoned) and lets workers
    inherit the parent's warmed AnalysisManager via copy-on-write.
    """

    name = "local"

    def __init__(self):
        self._ctx = multiprocessing.get_context("fork")

    def owns(self, cell):
        return True

    def journal_name(self):
        """The journal file this backend writes inside a campaign dir."""
        return JOURNAL_NAME

    def launch(self, fn, cell, attempt, sim_engine=None, trace=None):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=cell_worker,
            args=(child_conn, fn, cell.params, sim_engine, trace),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(cell, attempt, process, parent_conn)

    def wait(self, handles, timeout):
        """Handles with a result payload ready, waiting up to timeout."""
        by_conn = {handle.conn: handle for handle in handles}
        ready = connection_wait(list(by_conn), timeout=timeout)
        return [by_conn[conn] for conn in ready]

    def alive(self, handle):
        return handle.process.is_alive()

    def collect(self, handle):
        """Reap one attempt; returns its payload dict or ``None``.

        ``None`` means the worker died without shipping a payload (hard
        crash) — the scheduler classifies that via the exit code.
        """
        payload = None
        if handle.conn.poll():
            try:
                payload = handle.conn.recv()
            except (EOFError, OSError):
                payload = None
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join()
        handle.conn.close()
        return payload

    def exitcode(self, handle):
        return handle.process.exitcode

    def terminate(self, handles):
        handles = list(handles)
        for handle in handles:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join()
            handle.conn.close()


def shard_of(cell_id, shards):
    """The shard index a content-hashed cell ID belongs to.

    Pure function of the cell ID, so every machine computes the same
    partition without coordination — the same property that makes the
    journal's resume protocol location-independent.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(cell_id, 16) % shards


def shard_journal_name(index, count):
    """``journal.shard-I-of-N.jsonl`` inside a campaign directory."""
    return f"journal.shard-{index}-of-{count}.jsonl"


class ShardedBackend(LocalPoolBackend):
    """Run only this shard's partition of the spec's cells.

    ``shards`` machines each run ``ShardedBackend(shards, i)`` for
    their own ``i`` against the same spec; the partition is disjoint
    and complete by construction, so the union of the shard journals
    covers every cell exactly once.  Use :func:`merge_journals` (the
    ``campaign merge`` subcommand) to recombine.
    """

    name = "sharded"

    def __init__(self, shards, shard_index):
        super().__init__()
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not 0 <= shard_index < shards:
            raise ValueError(
                f"shard index {shard_index} out of range for "
                f"{shards} shard(s)"
            )
        self.shards = shards
        self.shard_index = shard_index

    def owns(self, cell):
        return shard_of(cell.cell_id, self.shards) == self.shard_index

    def journal_name(self):
        return shard_journal_name(self.shard_index, self.shards)


def make_backend(name, shards=None, shard_index=None):
    """Build a backend by registered name (see :data:`BACKENDS`)."""
    if name == "local":
        return LocalPoolBackend()
    if name == "sharded":
        if shards is None or shard_index is None:
            raise ValueError(
                "sharded backend needs shards and shard_index"
            )
        return ShardedBackend(shards, shard_index)
    raise ValueError(
        f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})"
    )
