"""Resumable, fault-tolerant design-space sweep campaigns.

A *campaign* turns a design-space sweep — benchmark × input set ×
selection algorithm × threshold/processor parameters — into a durable,
restartable unit of work instead of one monolithic in-memory pass:

- :mod:`repro.campaign.spec` — the declarative :class:`CampaignSpec`
  (grid axes, deterministic content-hashed cell IDs, the default
  baseline→selection→DMP cell function);
- :mod:`repro.campaign.journal` — the append-only JSONL journal whose
  replay *is* the resume protocol;
- :mod:`repro.campaign.scheduler` — campaign *policy*: timeout,
  bounded retry with exponential backoff, and quarantine;
- :mod:`repro.campaign.backends` — execution *mechanics* behind a
  pluggable :class:`LocalPoolBackend` / :class:`ShardedBackend`
  interface (fork-per-cell locally, or one shard of the cell space
  per machine with ``campaign merge`` recombining the journals);
- :mod:`repro.campaign.report` — status and deterministic reporting
  (per-cell stats, mean speedups, Fig. 7-style sensitivity grids);
- :mod:`repro.campaign.cli` — ``python -m repro campaign
  {run,resume,status,report,merge}``.

See ``docs/campaigns.md``.
"""

from repro.campaign.backends import (
    BACKENDS,
    LocalPoolBackend,
    ShardedBackend,
    make_backend,
    shard_of,
)
from repro.campaign.journal import (
    Journal,
    JournalState,
    find_shard_journals,
    merge_shard_journals,
    replay,
)
from repro.campaign.report import (
    aggregate_means,
    render_report,
    render_status,
)
from repro.campaign.scheduler import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    Scheduler,
)
from repro.campaign.spec import (
    Axis,
    CampaignSpec,
    Cell,
    SELECTION_PRESETS,
    build_selection,
    content_hash,
    run_cell,
)

__all__ = [
    "Axis",
    "BACKENDS",
    "CampaignSpec",
    "Cell",
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_ATTEMPTS",
    "Journal",
    "JournalState",
    "LocalPoolBackend",
    "SELECTION_PRESETS",
    "Scheduler",
    "ShardedBackend",
    "aggregate_means",
    "build_selection",
    "content_hash",
    "find_shard_journals",
    "make_backend",
    "merge_shard_journals",
    "render_report",
    "render_status",
    "replay",
    "run_cell",
    "shard_of",
]
