"""Resumable, fault-tolerant design-space sweep campaigns.

A *campaign* turns a design-space sweep — benchmark × input set ×
selection algorithm × threshold/processor parameters — into a durable,
restartable unit of work instead of one monolithic in-memory pass:

- :mod:`repro.campaign.spec` — the declarative :class:`CampaignSpec`
  (grid axes, deterministic content-hashed cell IDs, the default
  baseline→selection→DMP cell function);
- :mod:`repro.campaign.journal` — the append-only JSONL journal whose
  replay *is* the resume protocol;
- :mod:`repro.campaign.scheduler` — per-cell worker processes with
  timeout, bounded retry with exponential backoff, and quarantine;
- :mod:`repro.campaign.report` — status and deterministic reporting
  (per-cell stats, mean speedups, Fig. 7-style sensitivity grids);
- :mod:`repro.campaign.cli` — ``python -m repro campaign
  {run,resume,status,report}``.

See ``docs/campaigns.md``.
"""

from repro.campaign.journal import Journal, JournalState, replay
from repro.campaign.report import (
    aggregate_means,
    render_report,
    render_status,
)
from repro.campaign.scheduler import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    Scheduler,
)
from repro.campaign.spec import (
    Axis,
    CampaignSpec,
    Cell,
    SELECTION_PRESETS,
    build_selection,
    content_hash,
    run_cell,
)

__all__ = [
    "Axis",
    "CampaignSpec",
    "Cell",
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_ATTEMPTS",
    "Journal",
    "JournalState",
    "SELECTION_PRESETS",
    "Scheduler",
    "aggregate_means",
    "build_selection",
    "content_hash",
    "render_report",
    "render_status",
    "replay",
    "run_cell",
]
