"""``python -m repro campaign watch`` — live campaign status.

A pure *reader* over the campaign directory: each refresh re-replays
the journal — or, for a sharded run, every shard journal present —
exactly like ``campaign status`` does, so watching never perturbs the
run (no locks, no writes, torn tails tolerated because a shard is
probably mid-append right now).  The rendered frame shows, per
journal:

- progress (settled/owned cells, with a bar);
- retry and quarantine counts, failures awaiting retry;
- in-flight cells (started in the live session, not yet finished);
- cell throughput over a trailing window and the ETA it implies.

``--once`` renders a single frame and exits (tests, CI, cron); the
default loops every ``--interval`` seconds until ^C, clearing the
screen between frames when stdout is a terminal.
"""

import os
import time

from repro.campaign.backends import shard_of
from repro.campaign.journal import (
    JOURNAL_NAME,
    find_shard_journals,
    replay,
)
from repro.obs.tracer import iter_records

#: Trailing window (seconds) for the cell-throughput estimate.
RATE_WINDOW_SECONDS = 120.0


def scan_finishes(path):
    """``(finish_timestamps, retry_starts)`` from one journal file.

    A raw, torn-tail-tolerant pass: ``replay`` gives the settled
    *state*, this gives the *when* — finish timestamps drive the
    throughput/ETA estimate, and ``cell.start`` records with attempt
    > 1 count as retries launched.
    """
    finishes = []
    retries = 0
    if not os.path.exists(path):
        return finishes, retries
    for record in iter_records(path, strict=False):
        kind = record.get("type")
        if kind == "cell.finish":
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                finishes.append(float(ts))
        elif kind == "cell.start" and record.get("attempt", 1) > 1:
            retries += 1
    return finishes, retries


def journal_targets(spec, directory):
    """The journals to watch: ``[(label, path, owned_cells)]``.

    An unsharded (or merged) ``journal.jsonl`` is watched as one row
    owning every cell; otherwise each shard journal present becomes a
    row owning its partition.  Both can coexist after a merge — the
    merged journal wins, matching ``status``/``report``.
    """
    cells = spec.cells()
    main = os.path.join(directory, JOURNAL_NAME)
    if os.path.exists(main) and os.path.getsize(main) > 0:
        return [("all", main, list(cells))]
    try:
        shards = find_shard_journals(directory)
    except ValueError:
        shards = []
    if not shards:
        return [("all", main, list(cells))]
    targets = []
    for index, count, path in shards:
        owned = [
            cell for cell in cells
            if shard_of(cell.cell_id, count) == index
        ]
        targets.append((f"shard {index}/{count}", path, owned))
    return targets


def build_watch(spec, directory, now=None):
    """One JSON-ready status frame for the campaign (pure reader)."""
    now = time.time() if now is None else now
    rows = []
    total_rate = 0.0
    for label, path, owned in journal_targets(spec, directory):
        state = replay(path)
        owned_ids = {cell.cell_id for cell in owned}
        done = len(owned_ids & set(state.results))
        quarantined = len(owned_ids & state.quarantined)
        finishes, retries = scan_finishes(path)
        window_start = now - RATE_WINDOW_SECONDS
        recent = [ts for ts in finishes if ts >= window_start]
        if recent:
            elapsed = max(now - min(recent), 1e-6)
            rate = len(recent) / elapsed
        else:
            rate = 0.0
        total_rate += rate
        rows.append({
            "label": label,
            "journal": os.path.basename(path),
            "owned": len(owned_ids),
            "done": done,
            "quarantined": quarantined,
            "failing": len({
                cell_id for cell_id in state.failures
                if cell_id in owned_ids
                and cell_id not in state.results
                and cell_id not in state.quarantined
            }),
            "in_flight": len(state.in_flight),
            "retries": retries,
            "sessions": state.sessions,
            "corrupt_lines": state.corrupt_lines,
            "cells_per_sec": rate,
        })
    owned_total = sum(row["owned"] for row in rows)
    settled = sum(row["done"] + row["quarantined"] for row in rows)
    pending = owned_total - settled
    eta = pending / total_rate if total_rate > 0 and pending else None
    return {
        "campaign": spec.name,
        "directory": directory,
        "ts": now,
        "rows": rows,
        "total_cells": len(spec.cells()),
        "owned_cells": owned_total,
        "settled_cells": settled,
        "pending_cells": pending,
        "cells_per_sec": total_rate,
        "eta_seconds": eta,
    }


def _bar(done, total, width=24):
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * min(done / total, 1.0)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _format_eta(seconds):
    if seconds is None:
        return "--"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_watch(frame):
    """One human-readable frame of :func:`build_watch` data."""
    clock = time.strftime("%H:%M:%S", time.localtime(frame["ts"]))
    lines = [
        f"campaign {frame['campaign']!r} — "
        f"{frame['settled_cells']}/{frame['owned_cells']} cells settled"
        f", {frame['pending_cells']} pending  ({clock})",
    ]
    for row in frame["rows"]:
        settled = row["done"] + row["quarantined"]
        bar = _bar(settled, row["owned"])
        extras = []
        if row["in_flight"]:
            extras.append(f"{row['in_flight']} in flight")
        if row["failing"]:
            extras.append(f"{row['failing']} failing")
        if row["retries"]:
            extras.append(f"{row['retries']} retries")
        if row["quarantined"]:
            extras.append(f"{row['quarantined']} quarantined")
        if row["corrupt_lines"]:
            extras.append(f"{row['corrupt_lines']} torn lines")
        suffix = f"  ({', '.join(extras)})" if extras else ""
        lines.append(
            f"  {row['label']:<12} {bar} "
            f"{settled:>4}/{row['owned']:<4} "
            f"{row['cells_per_sec']:6.2f} cells/s{suffix}"
        )
    lines.append(
        f"  throughput {frame['cells_per_sec']:.2f} cells/s, "
        f"eta {_format_eta(frame['eta_seconds'])}"
    )
    return "\n".join(lines)


def watch_loop(spec, directory, interval=2.0, once=False,
               stream=None, clear=None):
    """Render frames until interrupted; returns an exit code."""
    import sys

    stream = stream if stream is not None else sys.stdout
    if clear is None:
        clear = stream.isatty()
    try:
        while True:
            frame = build_watch(spec, directory)
            if clear:
                stream.write("\x1b[2J\x1b[H")
            stream.write(render_watch(frame) + "\n")
            stream.flush()
            if once:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        stream.write("\n")
        return 0
