"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a design-space sweep as data: the
benchmark list, input sets, trace scale, a base selection algorithm,
and a list of :class:`Axis` objects swept as a full grid.  Axis names
route to one of three targets:

- a :class:`~repro.core.SelectionThresholds` field name
  (``max_instr``, ``min_merge_prob``, ...) overrides that threshold;
- ``proc.<field>`` overrides a :class:`~repro.uarch.ProcessorConfig`
  field (``proc.confidence_threshold``, ``proc.predictor_kind``, ...);
- ``selection`` sweeps the base selection algorithm itself over the
  preset names in :data:`SELECTION_PRESETS`.

:meth:`CampaignSpec.cells` resolves the grid into a deterministic,
ordered list of :class:`Cell` objects.  Each cell's identity is a
content hash of its *resolved* parameters (benchmark, input set,
scale, selection, threshold and processor overrides, and the cell
function), so cell IDs are stable across processes, machines, and
re-orderings of the spec — which is what makes the journal's
"skip what already finished" resume semantics sound.

The default cell function, :func:`run_cell`, is the paper pipeline:
baseline simulation, profile-driven selection, DMP simulation, and the
speedup between them.  Specs may point ``cell`` at any other
module-level function taking the same parameter dict, which keeps the
scheduler and journal reusable for non-simulation sweeps (and makes
the crash/timeout paths testable without patching).
"""

import hashlib
import importlib
import json
from dataclasses import dataclass, field, fields

from repro.compiler import registry
from repro.core import SelectionThresholds
from repro.uarch import ProcessorConfig

#: Dotted path of the default cell function (module:attribute).
DEFAULT_CELL = "repro.campaign.spec:run_cell"

#: Threshold field names an axis may target directly.
THRESHOLD_FIELDS = frozenset(f.name for f in fields(SelectionThresholds))

#: Processor field names an axis may target via ``proc.<field>``.
PROCESSOR_FIELDS = frozenset(f.name for f in fields(ProcessorConfig))

#: The recommended selection presets for sweeps; any name registered
#: in :mod:`repro.compiler.registry` is accepted.
SELECTION_PRESETS = ("exact-freq", "all-best-heur", "all-best-cost")


def _known_selection(name):
    return name in registry.names()


def canonical_json(obj):
    """Deterministic JSON encoding used for hashing and journaling."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj, length=12):
    """A short, stable content hash of a JSON-able object."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()[:length]


def resolve_cell_fn(path):
    """Import the cell function named by ``pkg.mod:attr`` (or dots)."""
    module_name, sep, attr = path.partition(":")
    if not sep:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise ValueError(f"malformed cell function path {path!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ValueError(
            f"cell function {path!r} not found in {module_name}"
        ) from None


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a target name and its grid values."""

    name: str
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class Cell:
    """One resolved grid point: a stable ID plus its parameters.

    ``point`` is the tuple of (axis name, value) pairs in spec axis
    order — the report groups and labels cells by it.
    """

    cell_id: str
    params: dict
    point: tuple

    @property
    def benchmark(self):
        return self.params["benchmark"]

    def label(self):
        axes = ",".join(f"{n}={v}" for n, v in self.point)
        return f"{self.benchmark}[{axes}]" if axes else self.benchmark


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative design-space sweep (see the module docstring)."""

    name: str
    benchmarks: tuple
    input_sets: tuple = ("reduced",)
    scale: float = 1.0
    selection: str = "all-best-heur"
    axes: tuple = ()
    cell: str = DEFAULT_CELL

    def __post_init__(self):
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "input_sets", tuple(self.input_sets))
        object.__setattr__(
            self,
            "axes",
            tuple(
                axis if isinstance(axis, Axis) else Axis(**axis)
                for axis in self.axes
            ),
        )
        self.validate()

    def validate(self):
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.benchmarks:
            raise ValueError("campaign needs at least one benchmark")
        if not self.input_sets:
            raise ValueError("campaign needs at least one input set")
        seen = set()
        for axis in self.axes:
            if axis.name in seen:
                raise ValueError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
            _validate_axis(axis)
        if not _known_selection(self.selection):
            raise ValueError(
                f"unknown selection preset {self.selection!r} "
                f"(choose from {', '.join(registry.names())})"
            )
        return self

    @property
    def spec_hash(self):
        return content_hash(self.as_dict())

    def as_dict(self):
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "input_sets": list(self.input_sets),
            "scale": self.scale,
            "selection": self.selection,
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
            "cell": self.cell,
        }

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def dump(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def points(self):
        """Axis-product points as tuples of (axis name, value) pairs."""
        result = [()]
        for axis in self.axes:
            result = [
                point + ((axis.name, value),)
                for point in result
                for value in axis.values
            ]
        return result

    def cells(self):
        """The ordered, resolved cell list (benchmark-major order).

        Benchmark-major order means the first cell of each benchmark
        warms the persistent artifact cache for all its grid points.
        """
        cells = []
        points = self.points()
        for benchmark in self.benchmarks:
            for input_set in self.input_sets:
                for point in points:
                    params = self._resolve(benchmark, input_set, point)
                    cells.append(
                        Cell(
                            cell_id=content_hash(params),
                            params=params,
                            point=point,
                        )
                    )
        return cells

    def _resolve(self, benchmark, input_set, point):
        thresholds = {}
        processor = {}
        selection = self.selection
        for name, value in point:
            if name == "selection":
                selection = value
            elif name.startswith("proc."):
                processor[name[len("proc."):]] = value
            else:
                thresholds[name] = value
        if not _known_selection(selection):
            raise ValueError(f"unknown selection preset {selection!r}")
        return {
            "benchmark": benchmark,
            "input_set": input_set,
            "scale": self.scale,
            "selection": selection,
            "thresholds": thresholds,
            "processor": processor,
            "cell": self.cell,
        }


def _validate_axis(axis):
    if axis.name == "selection":
        for value in axis.values:
            if not _known_selection(value):
                raise ValueError(
                    f"selection axis value {value!r} is not a preset"
                )
        return
    if axis.name.startswith("proc."):
        fieldname = axis.name[len("proc."):]
        if fieldname not in PROCESSOR_FIELDS:
            raise ValueError(
                f"axis {axis.name!r} targets no ProcessorConfig field"
            )
        return
    if axis.name not in THRESHOLD_FIELDS:
        raise ValueError(
            f"axis {axis.name!r} is neither a SelectionThresholds field, "
            f"a proc.<field>, nor 'selection'"
        )


def build_selection(preset, threshold_overrides=None):
    """A :class:`SelectionConfig` for a preset plus threshold overrides.

    Resolves through :mod:`repro.compiler.registry` — the same place
    the experiments and the ``repro compile`` CLI look names up.
    """
    thresholds = None
    if threshold_overrides:
        thresholds = SelectionThresholds().with_overrides(
            **threshold_overrides
        )
    try:
        return registry.resolve(preset, thresholds=thresholds)
    except KeyError:
        raise ValueError(f"unknown selection preset {preset!r}") from None


def build_processor(overrides):
    """A :class:`ProcessorConfig` with overrides, or ``None`` for default."""
    if not overrides:
        return None
    return ProcessorConfig(**overrides).validate()


def run_cell(params):
    """The default cell: baseline → selection → DMP simulation → speedup.

    Returns a JSON-ready dict (the journal stores it verbatim); all
    numbers are exact reproductions of what the monolithic figure
    drivers compute for the same (benchmark, config) pair.  The
    ``ledger`` key is the compact decision-ledger summary — the
    scheduler pops it off the result and journals it as a cell
    annotation (like the cache counters), so the deterministic report
    payload stays byte-identical with or without it.
    """
    from repro.experiments.runner import run_baseline, run_selection
    from repro.obs.explain import cell_ledger_summary
    from repro.obs.ledger import RuntimeLedger, SelectionLedger

    processor = build_processor(params.get("processor"))
    selection = build_selection(
        params["selection"], params.get("thresholds")
    )
    benchmark = params["benchmark"]
    input_set = params.get("input_set", "reduced")
    scale = params.get("scale", 1.0)
    baseline = run_baseline(
        benchmark, input_set=input_set, scale=scale, config=processor
    )
    selection_ledger = SelectionLedger()
    runtime_ledger = RuntimeLedger()
    stats, annotation = run_selection(
        benchmark, selection, input_set=input_set, scale=scale,
        config=processor,
        selection_ledger=selection_ledger,
        runtime_ledger=runtime_ledger,
    )
    return {
        "speedup": stats.speedup_over(baseline),
        "baseline": baseline.as_dict(),
        "stats": stats.as_dict(),
        "diverge_branches": len(annotation),
        "ledger": cell_ledger_summary(
            selection_ledger, runtime_ledger, selection.cost_params
        ),
    }


def prepare_cell(params):
    """Warm shared caches in the scheduler *parent* before a cell forks.

    Builds the cell's artifacts (trace + profile) and the shared
    :class:`~repro.compiler.AnalysisManager` entry for its
    (program, profile) pair, so every forked worker of the same
    (benchmark, input set) inherits the analysis — dominators, loops,
    and memoized path sets — via copy-on-write instead of recomputing
    it per cell.  Repeat calls are cache hits, so the scheduler can
    invoke this per launch.  Workers journal their
    ``analysis_cache_hits_total`` so reports can show the reuse.
    """
    from repro.compiler import shared_manager
    from repro.experiments.runner import get_artifacts

    artifacts = get_artifacts(
        params["benchmark"],
        input_set=params.get("input_set", "reduced"),
        scale=params.get("scale", 1.0),
    )
    shared_manager().analysis(artifacts.program, artifacts.profile)


#: The scheduler looks for this attribute on a cell function and, when
#: present, calls it in the parent before each launch (see Scheduler).
run_cell.prepare = prepare_cell
