"""Programs and functions.

A :class:`Program` is the unit the whole toolchain operates on: the
functional emulator executes it, the CFG package analyzes it, and the
diverge-branch selector annotates it.  Instructions are addressed by
their index in :attr:`Program.instructions` — the "pc".  A
:class:`Function` is a contiguous half-open index range ``[start, end)``
with a unique entry at ``start``; ``CALL`` targets must be function
entries.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CFGError
from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class Function:
    """A contiguous function: ``[start, end)`` instruction indices."""

    name: str
    start: int
    end: int

    def __post_init__(self):
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"function {self.name!r}: bad range [{self.start}, {self.end})"
            )

    def contains(self, pc):
        """True if instruction index ``pc`` lies inside this function."""
        return self.start <= pc < self.end

    @property
    def size(self):
        return self.end - self.start


class Program:
    """An immutable sequence of instructions plus function metadata.

    Parameters
    ----------
    instructions:
        The flat instruction list.  Index == pc.
    functions:
        Non-overlapping, sorted :class:`Function` ranges covering every
        instruction.  The first function is the entry function; execution
        starts at its ``start``.
    name:
        Optional program name, used in reports.
    """

    def __init__(self, instructions, functions, name="program"):
        self._instructions: Tuple[Instruction, ...] = tuple(instructions)
        self._functions: Tuple[Function, ...] = tuple(functions)
        self.name = name
        self._function_by_name: Dict[str, Function] = {}
        self._function_of_pc: List[Optional[Function]] = [None] * len(
            self._instructions
        )
        self._fingerprint: Optional[str] = None
        self._validate()

    # -- construction helpers -------------------------------------------

    def _validate(self):
        if not self._instructions:
            raise CFGError("program has no instructions")
        if not self._functions:
            raise CFGError("program has no functions")
        prev_end = 0
        for func in self._functions:
            if func.start != prev_end:
                raise CFGError(
                    f"function {func.name!r} starts at {func.start}, "
                    f"expected {prev_end} (functions must tile the program)"
                )
            if func.name in self._function_by_name:
                raise CFGError(f"duplicate function name {func.name!r}")
            self._function_by_name[func.name] = func
            for pc in range(func.start, func.end):
                self._function_of_pc[pc] = func
            prev_end = func.end
        if prev_end != len(self._instructions):
            raise CFGError(
                f"functions cover [0, {prev_end}) but program has "
                f"{len(self._instructions)} instructions"
            )
        entries = {f.start for f in self._functions}
        for pc, inst in enumerate(self._instructions):
            if inst.target is not None:
                if not 0 <= inst.target < len(self._instructions):
                    raise CFGError(
                        f"@{pc} {inst}: target {inst.target} out of range"
                    )
                if inst.op is Opcode.CALL and inst.target not in entries:
                    raise CFGError(
                        f"@{pc} {inst}: call target is not a function entry"
                    )
                if inst.op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP):
                    func = self._function_of_pc[pc]
                    if not func.contains(inst.target):
                        raise CFGError(
                            f"@{pc} {inst}: branch leaves function "
                            f"{func.name!r}"
                        )

    # -- access ----------------------------------------------------------

    @property
    def instructions(self):
        return self._instructions

    @property
    def functions(self):
        return self._functions

    def __len__(self):
        return len(self._instructions)

    def __getitem__(self, pc):
        return self._instructions[pc]

    @property
    def entry(self):
        """The pc where execution starts."""
        return self._functions[0].start

    def function_of(self, pc):
        """The :class:`Function` containing instruction index ``pc``."""
        if not 0 <= pc < len(self._instructions):
            raise CFGError(f"pc out of range: {pc}")
        return self._function_of_pc[pc]

    def function_named(self, name):
        try:
            return self._function_by_name[name]
        except KeyError:
            raise CFGError(f"no function named {name!r}") from None

    def conditional_branch_pcs(self):
        """All pcs holding conditional branches, in program order."""
        return [
            pc
            for pc, inst in enumerate(self._instructions)
            if inst.is_conditional_branch
        ]

    @property
    def fingerprint(self):
        """Stable content key for this program (name + disassembly).

        Used by ``repro.compiler.AnalysisManager`` to share cached
        :class:`~repro.core.analysis.ProgramAnalysis` products across
        selection configs operating on the same program.
        """
        if self._fingerprint is None:
            import zlib

            text = f"{self.name}\n{self.disassemble()}"
            self._fingerprint = f"{zlib.crc32(text.encode('utf-8')):08x}"
        return self._fingerprint

    # -- printing ----------------------------------------------------------

    def disassemble(self):
        """Multi-line textual disassembly of the whole program."""
        lines = []
        starts = {f.start: f.name for f in self._functions}
        for pc, inst in enumerate(self._instructions):
            if pc in starts:
                lines.append(f"{starts[pc]}:")
            label = f"  <{inst.label}>" if inst.label else ""
            lines.append(f"  {pc:5d}: {inst.format()}{label}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"Program({self.name!r}, {len(self._instructions)} insts, "
            f"{len(self._functions)} functions)"
        )
