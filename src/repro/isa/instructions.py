"""Instruction and opcode definitions.

Opcodes are grouped by behaviour:

- ALU ops take a destination and two sources; the second source is either
  a register (``src2``) or an immediate (``imm``), never both.
- ``LD``/``ST`` address memory as ``base register + immediate offset``;
  memory is word-addressed.
- ``BEQZ``/``BNEZ`` are the conditional branches: they test one register
  against zero and jump to an absolute instruction index.
- ``JMP`` is an unconditional direct jump; ``CALL``/``RET`` use an
  architectural return-address stack (the emulator's call stack).
- ``HALT`` terminates the program; ``NOP`` does nothing.

Comparison ALU ops (``CMPLT`` etc.) produce 0/1, so a branch condition is
typically computed by a compare followed by ``BNEZ``.

``CMOV`` is the conditional select the static if-conversion (meld)
transform predicates with: ``cmov rd, rc, rs`` writes ``rs`` into ``rd``
when ``rc`` is non-zero and leaves ``rd`` unchanged otherwise.  It
therefore *reads* its destination — the old value is a true data
dependency — which matters to the timing model's dataflow scheduling.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.registers import check_register


class Opcode(enum.Enum):
    """Every operation the ISA defines."""

    # ALU, register/immediate second operand.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Data movement.
    MOV = "mov"
    MOVI = "movi"
    CMOV = "cmov"
    # Memory.
    LD = "ld"
    ST = "st"
    # Control flow.
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    # Misc.
    NOP = "nop"
    HALT = "halt"


#: ALU opcodes (dest, src1, src2-or-imm).
ALU_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPGT,
        Opcode.CMPGE,
    }
)

#: Comparison opcodes — a subset of the ALU opcodes producing 0/1.
COMPARE_OPCODES = frozenset(
    {
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPGT,
        Opcode.CMPGE,
    }
)

#: Conditional branch opcodes.
COND_BRANCH_OPCODES = frozenset({Opcode.BEQZ, Opcode.BNEZ})

#: All opcodes that may redirect control flow.
CONTROL_OPCODES = frozenset(
    {Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP, Opcode.CALL, Opcode.RET}
)

#: Execution latency in cycles, by opcode, used by the timing model.
#: Loads are listed at their L1-hit latency; the memory hierarchy adds
#: miss penalties on top.
LATENCIES = {
    Opcode.MUL: 4,
    Opcode.DIV: 12,
    Opcode.LD: 2,
    Opcode.ST: 1,
}

DEFAULT_LATENCY = 1


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``target`` is an absolute instruction index for ``BEQZ``/``BNEZ``/
    ``JMP``/``CALL``.  ``dest``/``src1``/``src2`` are register indices;
    ``imm`` is an integer immediate.  Unused fields stay ``None``.
    ``label`` is an optional symbolic name attached by the builder /
    assembler for readable disassembly.
    """

    op: Opcode
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None
    label: Optional[str] = field(default=None, compare=False)

    def __post_init__(self):
        self._validate()

    def _validate(self):
        op = self.op
        if op in ALU_OPCODES:
            check_register(self.dest, "dest")
            check_register(self.src1, "src1")
            has_reg = self.src2 is not None
            has_imm = self.imm is not None
            if has_reg == has_imm:
                raise ValueError(
                    f"{op.value}: exactly one of src2/imm must be set"
                )
            if has_reg:
                check_register(self.src2, "src2")
        elif op is Opcode.MOV:
            check_register(self.dest, "dest")
            check_register(self.src1, "src1")
        elif op is Opcode.CMOV:
            check_register(self.dest, "dest")
            check_register(self.src1, "condition")
            check_register(self.src2, "src2")
        elif op is Opcode.MOVI:
            check_register(self.dest, "dest")
            if self.imm is None:
                raise ValueError("movi requires an immediate")
        elif op is Opcode.LD:
            check_register(self.dest, "dest")
            check_register(self.src1, "base")
            if self.imm is None:
                raise ValueError("ld requires an offset immediate")
        elif op is Opcode.ST:
            check_register(self.src1, "base")
            check_register(self.src2, "value")
            if self.imm is None:
                raise ValueError("st requires an offset immediate")
        elif op in COND_BRANCH_OPCODES:
            check_register(self.src1, "condition")
            if self.target is None:
                raise ValueError(f"{op.value} requires a target")
        elif op in (Opcode.JMP, Opcode.CALL):
            if self.target is None:
                raise ValueError(f"{op.value} requires a target")
        elif op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
            pass
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown opcode: {op}")

    # -- classification ------------------------------------------------

    @property
    def is_conditional_branch(self):
        """True for ``BEQZ``/``BNEZ``."""
        return self.op in COND_BRANCH_OPCODES

    @property
    def is_control(self):
        """True for any instruction that may redirect the pc."""
        return self.op in CONTROL_OPCODES

    @property
    def is_call(self):
        return self.op is Opcode.CALL

    @property
    def is_return(self):
        return self.op is Opcode.RET

    @property
    def is_load(self):
        return self.op is Opcode.LD

    @property
    def is_store(self):
        return self.op is Opcode.ST

    @property
    def is_halt(self):
        return self.op is Opcode.HALT

    # -- dataflow ------------------------------------------------------

    def written_register(self):
        """The architectural register this instruction writes, or None.

        Writes to the zero register are real in the encoding but the
        emulator discards them; callers that care (e.g. select-µop
        counting) should additionally ignore ``ZERO_REGISTER``.
        """
        if self.op in ALU_OPCODES or self.op in (
            Opcode.MOV,
            Opcode.MOVI,
            Opcode.CMOV,
            Opcode.LD,
        ):
            return self.dest
        return None

    def read_registers(self):
        """Tuple of architectural registers this instruction reads."""
        op = self.op
        if op in ALU_OPCODES:
            if self.src2 is not None:
                return (self.src1, self.src2)
            return (self.src1,)
        if op is Opcode.MOV:
            return (self.src1,)
        if op is Opcode.CMOV:
            # The old destination value is a true dependency: a
            # not-taken select preserves it.
            return (self.src1, self.src2, self.dest)
        if op is Opcode.LD:
            return (self.src1,)
        if op is Opcode.ST:
            return (self.src1, self.src2)
        if op in COND_BRANCH_OPCODES:
            return (self.src1,)
        return ()

    # -- latency -------------------------------------------------------

    @property
    def latency(self):
        """Base execution latency in cycles (before cache misses)."""
        return LATENCIES.get(self.op, DEFAULT_LATENCY)

    # -- printing ------------------------------------------------------

    def format(self):
        """Disassemble to a single line of assembly-like text."""
        op = self.op
        if op in ALU_OPCODES:
            second = f"r{self.src2}" if self.src2 is not None else str(self.imm)
            return f"{op.value} r{self.dest}, r{self.src1}, {second}"
        if op is Opcode.MOV:
            return f"mov r{self.dest}, r{self.src1}"
        if op is Opcode.CMOV:
            return f"cmov r{self.dest}, r{self.src1}, r{self.src2}"
        if op is Opcode.MOVI:
            return f"movi r{self.dest}, {self.imm}"
        if op is Opcode.LD:
            return f"ld r{self.dest}, {self.imm}(r{self.src1})"
        if op is Opcode.ST:
            return f"st r{self.src2}, {self.imm}(r{self.src1})"
        if op in COND_BRANCH_OPCODES:
            return f"{op.value} r{self.src1}, @{self.target}"
        if op in (Opcode.JMP, Opcode.CALL):
            return f"{op.value} @{self.target}"
        return op.value

    def __str__(self):
        return self.format()

    def retarget(self, new_target):
        """Return a copy of this instruction with ``target`` replaced.

        Used by the builder during label resolution; instructions are
        otherwise immutable.
        """
        return Instruction(
            op=self.op,
            dest=self.dest,
            src1=self.src1,
            src2=self.src2,
            imm=self.imm,
            target=new_target,
            label=self.label,
        )
