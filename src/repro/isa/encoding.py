"""Binary instruction encoding.

Fixed 64-bit little-endian words, one per instruction:

=======  ========  =====================================================
bits     field     meaning
=======  ========  =====================================================
0-7      opcode    index into the opcode table
8-15     dest      destination register (0xFF when unused)
16-23    src1      first source / base / condition (0xFF when unused)
24-31    src2      second source / store value (0xFF when unused)
32-63    operand   immediate or branch target (two's complement 32-bit)
=======  ========  =====================================================

The `operand` field holds the immediate for ALU/MOVI/LD/ST and the
absolute instruction index for control flow.  A one-bit flag is not
needed to disambiguate: the opcode determines the interpretation, and
ALU opcodes with a register ``src2`` store ``OPERAND_NONE``.

A *program image* is::

    magic "DMPB" | version u16 | function count u16
    per function: name length u16 | name utf-8 | start u32 | end u32
    instruction count u32
    instruction words ...

This gives the reproduction a real "binary" for the binary-analysis
toolset to chew on (paper §6.1) and lets programs round-trip through
files.
"""

import struct

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Function, Program

MAGIC = b"DMPB"
VERSION = 1

#: Stable opcode numbering (append-only for format stability).
_OPCODE_TABLE = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.CMPLT,
    Opcode.CMPLE, Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPGT,
    Opcode.CMPGE, Opcode.MOV, Opcode.MOVI, Opcode.LD, Opcode.ST,
    Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP, Opcode.CALL, Opcode.RET,
    Opcode.NOP, Opcode.HALT, Opcode.CMOV,
)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODE_TABLE)}

_REG_NONE = 0xFF
_OPERAND_NONE = 0x7FFFFFFF  # sentinel: "no operand"

_WORD = struct.Struct("<BBBBi")


def encode_instruction(inst):
    """Encode one instruction to its 8-byte word."""
    operand = _OPERAND_NONE
    if inst.target is not None:
        operand = inst.target
    elif inst.imm is not None:
        operand = inst.imm
        if operand == _OPERAND_NONE:
            raise AssemblerError(
                "immediate 0x7FFFFFFF collides with the no-operand "
                "sentinel and cannot be encoded"
            )
    if not -(1 << 31) <= operand < (1 << 31):
        raise AssemblerError(
            f"immediate {operand} does not fit the 32-bit operand field"
        )
    return _WORD.pack(
        _OPCODE_INDEX[inst.op],
        _REG_NONE if inst.dest is None else inst.dest,
        _REG_NONE if inst.src1 is None else inst.src1,
        _REG_NONE if inst.src2 is None else inst.src2,
        operand,
    )


def decode_instruction(word):
    """Decode one 8-byte word back into an :class:`Instruction`."""
    opcode_index, dest, src1, src2, operand = _WORD.unpack(word)
    try:
        op = _OPCODE_TABLE[opcode_index]
    except IndexError:
        raise AssemblerError(f"unknown opcode index {opcode_index}") \
            from None
    dest = None if dest == _REG_NONE else dest
    src1 = None if src1 == _REG_NONE else src1
    src2 = None if src2 == _REG_NONE else src2
    imm = None
    target = None
    if op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP, Opcode.CALL):
        target = operand
    elif operand != _OPERAND_NONE:
        imm = operand
    return Instruction(
        op=op, dest=dest, src1=src1, src2=src2, imm=imm, target=target
    )


def encode_program(program):
    """Serialize a whole program to a binary image."""
    parts = [MAGIC, struct.pack("<HH", VERSION, len(program.functions))]
    for function in program.functions:
        name = function.name.encode()
        parts.append(struct.pack("<H", len(name)))
        parts.append(name)
        parts.append(struct.pack("<II", function.start, function.end))
    parts.append(struct.pack("<I", len(program)))
    for inst in program.instructions:
        parts.append(encode_instruction(inst))
    return b"".join(parts)


def decode_program(blob, name="binary"):
    """Deserialize a program image produced by :func:`encode_program`."""
    if blob[:4] != MAGIC:
        raise AssemblerError("not a DMPB program image")
    offset = 4
    version, num_functions = struct.unpack_from("<HH", blob, offset)
    offset += 4
    if version != VERSION:
        raise AssemblerError(f"unsupported image version {version}")
    functions = []
    for _ in range(num_functions):
        (name_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        func_name = blob[offset:offset + name_len].decode()
        offset += name_len
        start, end = struct.unpack_from("<II", blob, offset)
        offset += 8
        functions.append(Function(func_name, start, end))
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    instructions = []
    for _ in range(count):
        instructions.append(
            decode_instruction(blob[offset:offset + _WORD.size])
        )
        offset += _WORD.size
    if offset != len(blob):
        raise AssemblerError(
            f"trailing bytes in program image ({len(blob) - offset})"
        )
    return Program(instructions, functions, name=name)
