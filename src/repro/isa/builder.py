"""Programmatic program construction with symbolic labels.

:class:`ProgramBuilder` is how the synthetic workload generator and the
tests author programs.  Control-flow targets are symbolic: branch/jump
targets name labels, call targets name functions; both are resolved to
absolute instruction indices at :meth:`ProgramBuilder.build` time.

Example
-------
>>> b = ProgramBuilder("demo")
>>> b.begin_function("main")
>>> b.movi(1, 5)
>>> b.beqz(1, "skip")
>>> b.addi(2, 2, imm=1)
>>> b.label("skip")
>>> b.halt()
>>> b.end_function()
>>> program = b.build()
"""

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Function, Program


class _PendingInstruction:
    """An emitted instruction whose target may still be symbolic."""

    __slots__ = ("inst", "symbol", "is_call")

    def __init__(self, inst, symbol=None, is_call=False):
        self.inst = inst
        self.symbol = symbol
        self.is_call = is_call


class ProgramBuilder:
    """Accumulates instructions and resolves labels into a Program."""

    def __init__(self, name="program"):
        self.name = name
        self._pending = []
        self._labels = {}
        self._functions = []
        self._open_function = None
        self._label_counter = 0

    # -- structure -------------------------------------------------------

    def begin_function(self, name):
        """Open a new function; all code until ``end_function`` is in it."""
        if self._open_function is not None:
            raise AssemblerError(
                f"cannot open function {name!r}: "
                f"{self._open_function[0]!r} is still open"
            )
        self._open_function = (name, len(self._pending))
        return self

    def end_function(self):
        """Close the currently open function."""
        if self._open_function is None:
            raise AssemblerError("no function is open")
        name, start = self._open_function
        end = len(self._pending)
        if end == start:
            raise AssemblerError(f"function {name!r} is empty")
        self._functions.append(Function(name, start, end))
        self._open_function = None
        return self

    def label(self, name):
        """Bind label ``name`` to the next instruction emitted."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._pending)
        return self

    def fresh_label(self, hint="L"):
        """Return a unique label name (not yet bound)."""
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    @property
    def here(self):
        """Index the next emitted instruction will occupy."""
        return len(self._pending)

    # -- emission ---------------------------------------------------------

    def _emit(self, inst, symbol=None, is_call=False):
        if self._open_function is None:
            raise AssemblerError("instruction emitted outside any function")
        self._pending.append(_PendingInstruction(inst, symbol, is_call))
        return self

    def _alu(self, op, dest, src1, src2=None, imm=None):
        return self._emit(
            Instruction(op=op, dest=dest, src1=src1, src2=src2, imm=imm)
        )

    def add(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.ADD, dest, src1, src2, imm)

    def addi(self, dest, src1, imm):
        return self._alu(Opcode.ADD, dest, src1, imm=imm)

    def sub(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.SUB, dest, src1, src2, imm)

    def mul(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.MUL, dest, src1, src2, imm)

    def div(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.DIV, dest, src1, src2, imm)

    def and_(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.AND, dest, src1, src2, imm)

    def or_(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.OR, dest, src1, src2, imm)

    def xor(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.XOR, dest, src1, src2, imm)

    def shl(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.SHL, dest, src1, src2, imm)

    def shr(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.SHR, dest, src1, src2, imm)

    def cmplt(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPLT, dest, src1, src2, imm)

    def cmple(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPLE, dest, src1, src2, imm)

    def cmpeq(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPEQ, dest, src1, src2, imm)

    def cmpne(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPNE, dest, src1, src2, imm)

    def cmpgt(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPGT, dest, src1, src2, imm)

    def cmpge(self, dest, src1, src2=None, imm=None):
        return self._alu(Opcode.CMPGE, dest, src1, src2, imm)

    def mov(self, dest, src):
        return self._emit(Instruction(op=Opcode.MOV, dest=dest, src1=src))

    def movi(self, dest, imm):
        return self._emit(Instruction(op=Opcode.MOVI, dest=dest, imm=imm))

    def cmov(self, dest, cond, src):
        """Conditional select: ``dest = src`` when ``cond`` is non-zero."""
        return self._emit(
            Instruction(op=Opcode.CMOV, dest=dest, src1=cond, src2=src)
        )

    def ld(self, dest, base, offset=0):
        return self._emit(
            Instruction(op=Opcode.LD, dest=dest, src1=base, imm=offset)
        )

    def st(self, value, base, offset=0):
        return self._emit(
            Instruction(op=Opcode.ST, src1=base, src2=value, imm=offset)
        )

    def beqz(self, cond, label):
        return self._emit(
            Instruction(op=Opcode.BEQZ, src1=cond, target=0, label=label),
            symbol=label,
        )

    def bnez(self, cond, label):
        return self._emit(
            Instruction(op=Opcode.BNEZ, src1=cond, target=0, label=label),
            symbol=label,
        )

    def jmp(self, label):
        return self._emit(
            Instruction(op=Opcode.JMP, target=0, label=label), symbol=label
        )

    def call(self, function_name):
        return self._emit(
            Instruction(op=Opcode.CALL, target=0, label=function_name),
            symbol=function_name,
            is_call=True,
        )

    def ret(self):
        return self._emit(Instruction(op=Opcode.RET))

    def halt(self):
        return self._emit(Instruction(op=Opcode.HALT))

    def nop(self):
        return self._emit(Instruction(op=Opcode.NOP))

    # -- resolution ---------------------------------------------------------

    def build(self):
        """Resolve all symbols and return the finished :class:`Program`."""
        if self._open_function is not None:
            raise AssemblerError(
                f"function {self._open_function[0]!r} was never closed"
            )
        entries = {f.name: f.start for f in self._functions}
        instructions = []
        for pending in self._pending:
            inst = pending.inst
            if pending.symbol is not None:
                table = entries if pending.is_call else self._labels
                kind = "function" if pending.is_call else "label"
                if pending.symbol not in table:
                    raise AssemblerError(
                        f"undefined {kind} {pending.symbol!r}"
                    )
                inst = inst.retarget(table[pending.symbol])
            instructions.append(inst)
        return Program(instructions, self._functions, name=self.name)
