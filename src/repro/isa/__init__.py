"""A small RISC instruction set used by the reproduction.

The ISA plays the role the Alpha ISA plays in the paper: a compilation
target whose binaries the binary-analysis toolset (:mod:`repro.cfg`,
:mod:`repro.core`) inspects and whose execution the functional emulator
(:mod:`repro.emulator`) and the timing simulator (:mod:`repro.uarch`)
model.  Programs are sequences of :class:`Instruction` objects addressed
by index (the "pc"); control transfers name instruction indices.
"""

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import (
    NUM_REGISTERS,
    REG_NAMES,
    ZERO_REGISTER,
    register_name,
)
from repro.isa.program import Function, Program
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import assemble

__all__ = [
    "Instruction",
    "Opcode",
    "NUM_REGISTERS",
    "REG_NAMES",
    "ZERO_REGISTER",
    "register_name",
    "Function",
    "Program",
    "ProgramBuilder",
    "assemble",
]
