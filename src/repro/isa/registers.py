"""Register file conventions.

The machine has 64 general-purpose integer registers, ``r0``–``r63``.
``r0`` is hardwired to zero, matching the Alpha's ``r31`` convention
(reads return 0, writes are discarded).  The paper's Table 1 gives the
baseline 512 *physical* registers; physical registers only matter to the
timing model's renaming assumptions, not to the ISA, so the architectural
register count here is an independent choice.
"""

NUM_REGISTERS = 64

#: The hardwired-zero register.
ZERO_REGISTER = 0

#: Pre-computed printable names, ``r0`` .. ``r63``.
REG_NAMES = tuple(f"r{i}" for i in range(NUM_REGISTERS))


def register_name(index):
    """Return the printable name for register ``index``.

    Raises :class:`ValueError` for out-of-range indices so that malformed
    instructions fail loudly during disassembly rather than silently.
    """
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return REG_NAMES[index]


def check_register(index, role="register"):
    """Validate ``index`` as a register number and return it.

    ``role`` names the operand in error messages (e.g. ``"dest"``).
    """
    if not isinstance(index, int) or isinstance(index, bool):
        raise TypeError(f"{role} must be an int register index, got {index!r}")
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"{role} register index out of range: {index}")
    return index
