"""A small text assembler.

Gives tests and examples a readable way to author programs.  Syntax::

    .func main
        movi r1, 5
        cmpeq r2, r1, 5      ; immediate second operand
        bnez r2, taken
        add  r3, r3, r1      ; register second operand
    taken:
        call helper
        halt
    .endfunc

    .func helper
        ret
    .endfunc

Comments start with ``;`` or ``#``.  Loads/stores use ``offset(rN)``
addressing: ``ld r1, 8(r2)`` / ``st r1, 0(r2)`` (store value first).
Branch targets are labels local to the program; call targets are
function names.
"""

import re

from repro.errors import AssemblerError
from repro.isa.builder import ProgramBuilder

_REGISTER_RE = re.compile(r"^r(\d+)$")
_MEMORY_RE = re.compile(r"^(-?\d+)\((r\d+)\)$")

#: ALU mnemonics the assembler accepts (dest, src1, reg-or-imm).
_ALU_MNEMONICS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
        "cmplt",
        "cmple",
        "cmpeq",
        "cmpne",
        "cmpgt",
        "cmpge",
    }
)

#: Map from assembler mnemonic to ProgramBuilder method name where the
#: two differ (python keywords can't be method names).
_BUILDER_METHOD = {"and": "and_", "or": "or_"}

#: Immediate-only convenience aliases: ``addi r1, r2, 4`` == ``add r1, r2, 4``.
_IMMEDIATE_ALIASES = {"addi": "add", "subi": "sub"}


def _parse_register(token, line_no):
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token, line_no):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: expected integer, got {token!r}"
        ) from None


def _split_operands(rest):
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def assemble(text, name="program"):
    """Assemble ``text`` into a :class:`repro.isa.Program`."""
    builder = ProgramBuilder(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.startswith(".func"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblerError(f"line {line_no}: malformed .func")
            builder.begin_function(parts[1])
            continue
        if line == ".endfunc":
            builder.end_function()
            continue
        if line.endswith(":"):
            builder.label(line[:-1].strip())
            continue
        _assemble_instruction(builder, line, line_no)
    return builder.build()


def _assemble_instruction(builder, line, line_no):
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)

    if mnemonic in _IMMEDIATE_ALIASES:
        if len(operands) != 3 or _REGISTER_RE.match(operands[2]):
            raise AssemblerError(
                f"line {line_no}: {mnemonic} needs dest, src, immediate"
            )
        mnemonic = _IMMEDIATE_ALIASES[mnemonic]
    if mnemonic in _ALU_MNEMONICS:
        if len(operands) != 3:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} needs 3 operands"
            )
        dest = _parse_register(operands[0], line_no)
        src1 = _parse_register(operands[1], line_no)
        method = getattr(
            builder, _BUILDER_METHOD.get(mnemonic, mnemonic)
        )
        if _REGISTER_RE.match(operands[2]):
            method(dest, src1, _parse_register(operands[2], line_no))
        else:
            method(dest, src1, imm=_parse_int(operands[2], line_no))
    elif mnemonic == "mov":
        _expect(operands, 2, mnemonic, line_no)
        builder.mov(
            _parse_register(operands[0], line_no),
            _parse_register(operands[1], line_no),
        )
    elif mnemonic == "cmov":
        _expect(operands, 3, mnemonic, line_no)
        builder.cmov(
            _parse_register(operands[0], line_no),
            _parse_register(operands[1], line_no),
            _parse_register(operands[2], line_no),
        )
    elif mnemonic == "movi":
        _expect(operands, 2, mnemonic, line_no)
        builder.movi(
            _parse_register(operands[0], line_no),
            _parse_int(operands[1], line_no),
        )
    elif mnemonic == "ld":
        _expect(operands, 2, mnemonic, line_no)
        dest = _parse_register(operands[0], line_no)
        offset, base = _parse_memory(operands[1], line_no)
        builder.ld(dest, base, offset)
    elif mnemonic == "st":
        _expect(operands, 2, mnemonic, line_no)
        value = _parse_register(operands[0], line_no)
        offset, base = _parse_memory(operands[1], line_no)
        builder.st(value, base, offset)
    elif mnemonic in ("beqz", "bnez"):
        _expect(operands, 2, mnemonic, line_no)
        cond = _parse_register(operands[0], line_no)
        getattr(builder, mnemonic)(cond, operands[1])
    elif mnemonic == "jmp":
        _expect(operands, 1, mnemonic, line_no)
        builder.jmp(operands[0])
    elif mnemonic == "call":
        _expect(operands, 1, mnemonic, line_no)
        builder.call(operands[0])
    elif mnemonic in ("ret", "halt", "nop"):
        _expect(operands, 0, mnemonic, line_no)
        getattr(builder, mnemonic)()
    else:
        raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")


def _expect(operands, count, mnemonic, line_no):
    if len(operands) != count:
        raise AssemblerError(
            f"line {line_no}: {mnemonic} needs {count} operands, "
            f"got {len(operands)}"
        )


def _parse_memory(token, line_no):
    match = _MEMORY_RE.match(token)
    if not match:
        raise AssemblerError(
            f"line {line_no}: expected offset(rN) addressing, got {token!r}"
        )
    offset = int(match.group(1))
    base = _parse_register(match.group(2), line_no)
    return offset, base
