"""Branch-behaviour input generators.

Benchmarks read their branch conditions from memory, so branch
predictability is a property of the *input data*, exactly as in real
programs.  The generators below produce outcome streams with
controllable difficulty:

- ``biased``: i.i.d. Bernoulli outcomes.  A predictor converges to the
  majority direction, so the misprediction rate approaches
  ``min(p, 1-p)`` — the knob for hard-to-predict branches.
- ``markov``: first-order correlated outcomes; history-based
  predictors learn these well (easy branches with bursty shape).
- ``pattern``: a fixed periodic pattern with noise — very predictable
  except for the injected noise rate.
- ``trip counts``: geometric or uniform loop trip counts; geometric
  with a small mean models parser-style unpredictable exits.

Every generator draws from an explicit :class:`random.Random` seed, so
input sets are reproducible and "reduced" vs "train" differ only by
seed and parameter shifts.
"""

import random


class BehaviorRNG:
    """A seeded source of branch-behaviour streams."""

    def __init__(self, seed):
        self._rng = random.Random(seed)

    def biased(self, n, p_true):
        """n i.i.d. outcomes, P(1) = ``p_true``."""
        rng = self._rng
        return [1 if rng.random() < p_true else 0 for _ in range(n)]

    def markov(self, n, p_same=0.9, start=1):
        """Correlated outcomes: repeat the previous with prob ``p_same``."""
        rng = self._rng
        out = []
        state = start
        for _ in range(n):
            if rng.random() >= p_same:
                state = 1 - state
            out.append(state)
        return out

    def pattern(self, n, period=7, duty=3, noise=0.02):
        """Periodic duty-cycle pattern with ``noise`` flip probability."""
        rng = self._rng
        out = []
        for i in range(n):
            bit = 1 if (i % period) < duty else 0
            if rng.random() < noise:
                bit = 1 - bit
            out.append(bit)
        return out

    def bursty(self, n, hard_fraction, window=48):
        """Phased outcomes: easy phases alternate with i.i.d.-random ones.

        This is the paper's motivating branch behaviour ("instances of
        the same static branch could be easy or hard to predict during
        different phases", §1): during easy phases the outcome is
        constant (predictors and the confidence estimator saturate);
        during hard phases outcomes are fair coin flips.  Mispredictions
        therefore *cluster* into low-confidence phases, which is what
        gives the JRS estimator its 15-50% PVN on real workloads.

        ``hard_fraction`` is the fraction of executions in hard phases,
        so the long-run misprediction rate ≈ ``hard_fraction / 2``.
        """
        rng = self._rng
        hard_fraction = min(0.95, max(0.02, hard_fraction))
        hard_len = max(4, int(window * hard_fraction))
        easy_len = max(4, int(window - hard_len))
        out = []
        hard = False
        remaining = easy_len
        easy_bit = 0
        while len(out) < n:
            if remaining <= 0:
                hard = not hard
                base = hard_len if hard else easy_len
                # Jitter phase lengths so they do not sync with the
                # predictor's history length.
                remaining = max(2, int(base * (0.5 + rng.random())))
                if not hard:
                    easy_bit = rng.randint(0, 1)
            out.append(rng.randint(0, 1) if hard else easy_bit)
            remaining -= 1
        return out

    def geometric_trips(self, n, mean, cap=None):
        """Trip counts ≥ 1 with geometric tail (unpredictable exits)."""
        rng = self._rng
        if mean <= 1.0:
            return [1] * n
        p_stop = 1.0 / mean
        cap = cap or int(mean * 8) + 4
        out = []
        for _ in range(n):
            trips = 1
            while trips < cap and rng.random() > p_stop:
                trips += 1
            out.append(trips)
        return out

    def uniform_trips(self, n, lo, hi):
        """Trip counts uniform in [lo, hi] (mildly unpredictable)."""
        rng = self._rng
        return [rng.randint(lo, hi) for _ in range(n)]

    def jittery_trips(self, n, mean, deviation_prob=0.3):
        """Mostly-constant trip counts with occasional ±1 deviations.

        A well-structured loop whose trip count the predictor can learn,
        except for a ``deviation_prob`` fraction of instances — those
        are the exit mispredictions a diverge loop can cover.
        """
        rng = self._rng
        base = max(1, int(round(mean)))
        out = []
        for _ in range(n):
            trips = base
            if rng.random() < deviation_prob:
                trips = max(1, base + (1 if rng.random() < 0.5 else -1))
            out.append(trips)
        return out

    def constant_trips(self, n, value):
        """Fixed trip counts (fully predictable after warmup)."""
        return [value] * n

    def values(self, n, lo, hi):
        """Arbitrary data values (for compute/memory regions)."""
        rng = self._rng
        return [rng.randint(lo, hi) for _ in range(n)]

    def pointer_chain(self, length, region_words):
        """A pseudo-random cyclic permutation for mcf-style chasing.

        Returns a list ``next`` of ``length`` indices < ``region_words``
        forming one cycle, so a load chain walks unpredictably over the
        region (defeating locality) but never escapes it.
        """
        rng = self._rng
        indices = list(range(length))
        rng.shuffle(indices)
        chain = [0] * length
        for i in range(length):
            chain[indices[i]] = indices[(i + 1) % length]
        return chain
