"""The 17-benchmark suite and its input sets.

Each spec encodes the qualitative character the paper reports for the
real benchmark (Table 2 and the per-benchmark notes of §7):

- *eon, perlbmk, li* — most mispredicted branches sit in **simple
  hammocks** (that is why the simple baselines do well on them, §7.2);
- *vpr, mcf, twolf* — hot, hard **short hammocks** (§7.1's +12%/+14%/+4%
  from always-predication);
- *twolf, go* — hammocks merging at **returns** (+8%/+3.5% from return
  CFMs);
- *gzip, parser, compress* — hot unpredictable-exit **loops** (parser's
  dictionary-compare loop is the paper's running example);
- *gcc, go* — very branchy, high-MPKI codes with complex CFGs;
- *mcf* — memory-bound pointer chasing (baseline IPC 0.45);
- *vortex, gap, m88ksim, eon* — mostly predictable branches (MPKI ≈ 1).

Everything else is **frequently-hammocks** — the paper's dominant
source of benefit (Alg-freq contributes 10% of the 20.4%).

Input sets: ``reduced`` (profiling and runs by default) and ``train``
(different seed, branch biases shifted by 0.03 and loop trip counts
scaled by 1.25 — enough to move some selections, as in Figure 10,
without changing program character).
"""

import zlib
from dataclasses import dataclass
from typing import Dict

from repro.errors import WorkloadError
from repro.workloads.generator import (
    BenchmarkSpec,
    Region,
    build_program,
    fill_memory,
)

#: Input-set definitions: (seed offset, bias shift, trip-count scale).
INPUT_SETS = {
    "reduced": (0, 0.0, 1.0),
    "train": (7919, 0.03, 1.25),
}


@dataclass
class Workload:
    """A ready-to-run benchmark instance."""

    name: str
    input_set: str
    spec: BenchmarkSpec
    program: object
    memory: dict
    max_instructions: int


def _spec(name, regions, iterations, note=""):
    # ``iterations`` here is only the pre-calibration starting point;
    # load_benchmark rescales it to hit ``target_dynamic``.
    return BenchmarkSpec(
        name=name, regions=tuple(regions), iterations=iterations, note=note
    )


# Shorthand region constructors keep the table below readable.
def _freq(p=0.45, count=1, side=12, rare=0.08, cold=70,
          behavior="bursty"):
    # ``p`` under bursty behaviour is the target misprediction rate.
    return Region("freq_hammock", p=p, count=count, side_insts=side,
                  rare_prob=rare, cold_insts=cold, behavior=behavior)


def _simple(p=0.45, count=1, side=12, behavior="bursty"):
    return Region("simple_hammock", p=p, count=count, side_insts=side,
                  behavior=behavior)


def _nested(p=0.45, count=1, side=12, behavior="bursty"):
    return Region("nested_hammock", p=p, count=count, side_insts=side,
                  behavior=behavior)


def _short(p=0.08, count=1, behavior="biased"):
    # Rare-event condition: taken only ``p`` of the time, i.i.d.  The
    # predictor settles on not-taken, so mispredictions are isolated
    # (~1/p executions apart) and roughly half of them arrive at *high*
    # confidence — the JRS counter saturates between them.  Those are
    # the mispredictions only the §3.4 always-predicate heuristic can
    # cover.
    return Region("short_hammock", p=p, count=count, behavior=behavior)


def _split(p=0.45, count=1, side=110):
    return Region("split", p=p, count=count, side_insts=side,
                  behavior="bursty")


def _ret(p=0.45, count=1, side=5, behavior="bursty"):
    return Region("ret_hammock", p=p, count=count, side_insts=side,
                  behavior=behavior)


def _loop(mean=3.0, count=1, body=5, trip="geometric"):
    return Region("diverge_loop", mean_iters=mean, count=count,
                  body_insts=body, trip_kind=trip)


def _longloop(mean=18.0, count=1, body=3):
    # Rejected by both LOOP_ITER (mean > 15) and DYNAMIC_LOOP_SIZE
    # (mean × body size > 80) — heuristic-rejection exercise.  Constant
    # trip counts keep its latch predictable (a well-behaved for-loop).
    return Region("long_loop", mean_iters=mean, count=count,
                  body_insts=body, trip_kind="constant")




def _mid(p=0.07, count=1):
    # Mid-size, moderately-predictable hammock (~80-inst sides, ~7%
    # misprediction).  Below MAX_INSTR=50 it is never a candidate; at
    # MAX_INSTR ≥ 100 Alg-exact admits it, where predication is a net
    # loss (its cost sits at the §4 model's break-even, but its real
    # PVN is far below the assumed 40%).  These are why "too large
    # MAX_INSTR hurts" (paper §7.1.1).
    return Region("simple_hammock", p=p, count=count, side_insts=88,
                  behavior="bursty")

def _borderloop():
    # A selection-*boundary* loop: with the reduced input its average
    # dynamic size (3 trips × 26-inst body = 78) sits just under
    # DYNAMIC_LOOP_SIZE = 80, so it is selected; with the train input
    # (trip counts × 1.25 → 4) it crosses the threshold and is
    # rejected.  Constant trips keep its latch perfectly predictable,
    # so the flip changes the *selection set* (Figure 10) without
    # disturbing performance.  These model the paper's input-sensitive
    # selections (gap 26%, mcf/crafty/vortex/bzip2/ijpeg 10-18%).
    return Region("diverge_loop", mean_iters=3.3, body_insts=24,
                  trip_kind="constant", gate_prob=0.15)

def _compute(n=10, count=1):
    return Region("compute", body_insts=n, count=count)


def _memory(loads=1, words=65536, count=1):
    return Region("memory", loads=loads, region_words=words, count=count)


BENCHMARK_SPECS: Dict[str, BenchmarkSpec] = {
    # -- SPEC CPU2000 integer ------------------------------------------------
    "gzip": _spec("gzip", [
        _freq(p=0.18, count=2), _loop(mean=3.0, count=1, body=6, trip="jittery"),
        _simple(p=0.95, behavior="biased", count=2), _compute(80, count=3), _longloop(),
        _split(p=0.35), _mid(),
    ], 1700, "loop-heavy compressor; diverge loops pay off (+6%)"),
    "vpr": _spec("vpr", [
        _short(p=0.06, count=3), _freq(p=0.28, count=3),
        _simple(p=0.95, behavior="biased"), _compute(50, count=2),
        _memory(loads=1, words=16384), _split(p=0.40),
    ], 1800, "hot hard short hammocks (+12% from always-predication)"),
    "gcc": _spec("gcc", [
        _freq(p=0.25, count=3, rare=0.10), _freq(p=0.30, count=2, side=14),
        _nested(p=0.92, behavior="biased"), _short(), _ret(p=0.15),
        _split(p=0.45, count=3), _compute(70),
    ], 1100, "very branchy, complex CFGs, high MPKI"),
    "mcf": _spec("mcf", [
        _memory(loads=1, words=65536, count=2), _short(p=0.11, count=2),
        _freq(p=0.22), _compute(50, count=2), _split(p=0.50),
        _borderloop(),
    ], 1500, "memory-bound; one dominant mispredicted short hammock (+14%)"),
    "crafty": _spec("crafty", [
        _freq(p=0.17, count=2), _nested(p=0.15), _simple(p=0.95, behavior="biased", count=2),
        _compute(80, count=3), _loop(mean=3.5, trip="jittery"),
        _split(p=0.40), _borderloop(), _mid(),
    ], 1500, "mixed search code"),
    "parser": _spec("parser", [
        _loop(mean=3.0, count=3, body=5), _freq(p=0.18, count=2),
        _simple(p=0.95, behavior="biased"), _compute(70, count=3), _split(p=0.40),
    ], 1500, "dictionary word-compare loop: unpredictable exits (+14%)"),
    "eon": _spec("eon", [
        _simple(p=0.07, count=2, side=12), _simple(p=0.96, behavior="biased", count=2),
        _compute(40, count=2), _longloop(), _mid(),
    ], 1400, "mispredictions concentrated in simple hammocks"),
    "perlbmk": _spec("perlbmk", [
        _simple(p=0.16, count=2, side=12), _freq(p=0.20, count=2),
        _compute(40, count=2), _split(p=0.45),
    ], 1600, "simple-hammock dominated interpreter"),
    "gap": _spec("gap", [
        Region("simple_hammock", behavior="pattern", p=0.02, count=2),
        Region("freq_hammock", behavior="pattern", p=0.03, count=2),
        _simple(p=0.96, behavior="biased", count=2), _compute(40, count=2),
        _borderloop(),
    ], 1700, "mostly predictable; selection is input-sensitive"),
    "vortex": _spec("vortex", [
        _simple(p=0.97, behavior="biased", count=3), _nested(p=0.95, behavior="biased"), _compute(40, count=2),
        _ret(p=0.95, behavior="biased"), _borderloop(),
    ], 1700, "highly predictable OO database; IPC-bound"),
    "bzip2": _spec("bzip2", [
        _freq(p=0.24, count=2), _loop(mean=4.0, body=8),
        _simple(p=0.93, behavior="biased"), _compute(60, count=2),
        _memory(loads=1, words=32768), _split(p=0.45), _borderloop(), _mid(),
    ], 1500, "biased-but-noisy compressor branches"),
    "twolf": _spec("twolf", [
        _short(p=0.10, count=2), _ret(p=0.12, count=2),
        _freq(p=0.16, count=2), _compute(60, count=2), _split(p=0.45),
        _mid(),
    ], 1500, "short hammocks (+4%) and return-merged hammocks (+8%)"),
    # -- SPEC 95 integer ----------------------------------------------------
    "compress": _spec("compress", [
        _loop(mean=4.0, count=1, body=6, trip="jittery"), _freq(p=0.20),
        _simple(p=0.94, behavior="biased"), _compute(80, count=3),
    ], 1700, "small kernel with data-driven loops"),
    "go": _spec("go", [
        _freq(p=0.32, count=3, rare=0.08), _freq(p=0.35, count=2, side=12),
        _ret(p=0.20, count=2), _short(count=2),
        _split(p=0.45, count=4), _compute(50, count=2),
    ], 1100, "hardest branches in the suite (MPKI 23), return merges"),
    "ijpeg": _spec("ijpeg", [
        _compute(60, count=2), _freq(p=0.14, count=2),
        _longloop(mean=16), _simple(p=0.96, behavior="biased", count=2),
        _borderloop(), _mid(),
    ], 1500, "compute-heavy with a few hard hammocks"),
    "li": _spec("li", [
        _simple(p=0.12, count=3, side=11), _ret(p=0.94, behavior="biased"),
        _compute(60), _split(p=0.40),
    ], 1600, "lisp interpreter: simple hammocks everywhere"),
    "m88ksim": _spec("m88ksim", [
        _simple(p=0.96, behavior="biased", count=3), _freq(p=0.95, behavior="biased", count=2),
        _compute(50, count=2), _nested(p=0.05), _mid(),
    ], 1700, "mostly predictable simulator loop"),
}

BENCHMARK_NAMES = tuple(BENCHMARK_SPECS)

_CALIBRATION_ITERATIONS = 48
_per_iteration_cache = {}
_program_cache = {}


def _per_iteration_cost(name):
    """Measured average dynamic instructions per outer iteration."""
    if name in _per_iteration_cache:
        return _per_iteration_cache[name]
    # Imported here to keep workloads importable without the emulator
    # in pathological partial-install situations.
    from repro.emulator import Emulator, ArchState

    spec = BENCHMARK_SPECS[name].with_iterations(_CALIBRATION_ITERATIONS)
    program, segments = build_program(spec)
    memory = fill_memory(spec, segments, seed=zlib.crc32(name.encode()))
    result = Emulator(program).run(
        state=ArchState(memory=memory),
        max_instructions=2_000_000,
    )
    cost = max(8.0, result.instruction_count / _CALIBRATION_ITERATIONS)
    _per_iteration_cache[name] = cost
    return cost


def load_benchmark(name, input_set="reduced", scale=1.0):
    """Instantiate a benchmark with one of its input sets.

    ``scale`` multiplies the target dynamic length (run-length knob for
    quick tests vs full experiments).  The outer iteration count is
    calibrated from a short measurement run so every benchmark lands
    near its ``target_dynamic`` regardless of region mix.
    """
    if name not in BENCHMARK_SPECS:
        raise WorkloadError(f"unknown benchmark {name!r}")
    if input_set not in INPUT_SETS:
        raise WorkloadError(f"unknown input set {input_set!r}")
    base_spec = BENCHMARK_SPECS[name]
    iterations = int(
        base_spec.target_dynamic * scale / _per_iteration_cost(name)
    )
    spec = base_spec.with_iterations(iterations)
    cache_key = (name, spec.iterations)
    if cache_key not in _program_cache:
        _program_cache[cache_key] = build_program(spec)
    program, segments = _program_cache[cache_key]
    seed_offset, p_shift, iter_scale = INPUT_SETS[input_set]
    seed = zlib.crc32(name.encode()) + seed_offset
    memory = fill_memory(
        spec, segments, seed, p_shift=p_shift, iter_scale=iter_scale
    )
    return Workload(
        name=name,
        input_set=input_set,
        spec=spec,
        program=program,
        memory=memory,
        max_instructions=int(spec.target_dynamic * scale * 4) + 100_000,
    )
