"""Benchmark program generation from region specifications.

A benchmark is one big outer loop over an input index; the body is a
sequence of *regions*, each a control-flow archetype from the paper's
Figure 3 (plus supporting compute/memory regions).  Every region reads
its per-iteration input word from its own memory segment, so branch
behaviour — and therefore which branches are hard to predict — is a
property of the generated input set, not of the code.

Region kinds
------------
``simple_hammock``
    if/else with ``side_insts`` straight-line instructions per side and
    no internal control flow (Figure 3a).  Alg-exact territory.
``nested_hammock``
    an if/else whose taken side contains another if/else (Figure 3b).
``freq_hammock``
    an if/else whose taken side has a *rare* branch to a long cold
    block before the common merge point (Figure 3c).  The cold path
    exceeds MAX_INSTR, so Alg-exact rejects the branch, but the common
    merge is reached with probability ≈ 1−rare on frequently executed
    paths — Alg-freq territory.
``short_hammock``
    a 2–3 instruction hammock with a hard-to-predict condition — the
    §3.4 always-predicate shape.
``ret_hammock``
    a call to a helper whose body is a hammock ending in *different*
    return instructions on each side — the §3.5 return-CFM shape (the
    branch has no IPOSDOM inside the helper).
``diverge_loop``
    a small do-while loop with a data-driven trip count — the §5
    diverge-loop shape (latch branch, exit at fall-through).
``long_loop``
    a larger/longer loop the §5.2 heuristics must *reject*.
``split``
    an if/else whose sides are so long (~110 instructions each) that
    reconvergence lies beyond any useful dynamic-predication scope —
    the §4 cost model and the MAX_INSTR bound both reject it.  These
    model the mispredictions DMP *cannot* cover (the reason gcc's
    carefully-selected diverge branches cover only 30% of its
    mispredictions, §7.2).
``compute``
    straight-line arithmetic (serial chain or parallel mix).
``memory``
    pointer-chasing loads over a private segment (mcf-style cache
    pressure) or strided streaming loads.
"""

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.isa import ProgramBuilder
from repro.workloads.behaviors import BehaviorRNG

#: Register conventions inside generated programs.
REG_INDEX = 10        # outer loop index
REG_LIMIT = 11        # outer loop bound
REG_ARG = 20          # argument pointer for helper calls
_CHASE_REGS = (21, 60, 61, 62, 63)  # pointer-chase registers
_SCRATCH = (2, 3, 4, 5, 6, 7, 8, 9)
_ACCUMULATORS = tuple(range(22, 60))

REGION_KINDS = frozenset(
    {
        "simple_hammock",
        "nested_hammock",
        "freq_hammock",
        "short_hammock",
        "split",
        "ret_hammock",
        "diverge_loop",
        "long_loop",
        "compute",
        "memory",
    }
)


@dataclass(frozen=True)
class Region:
    """One control-flow region of a benchmark.

    ``p`` is the primary branch-behaviour parameter (meaning depends on
    ``behavior``: Bernoulli bias for ``biased``, stay-probability for
    ``markov``, flip-noise for ``pattern``).  ``count`` replicates the
    region as distinct static code with independent input streams.
    """

    kind: str
    behavior: str = "biased"
    p: float = 0.5
    side_insts: int = 6
    rare_prob: float = 0.03
    cold_insts: int = 70
    body_insts: int = 6
    mean_iters: float = 4.0
    trip_kind: str = "geometric"
    loads: int = 1
    region_words: int = 4096
    count: int = 1
    #: For loop regions: probability the loop runs at all in a given
    #: iteration (a zero trip word skips it).  < 1.0 emits a gate branch.
    gate_prob: float = 1.0

    def __post_init__(self):
        if self.kind not in REGION_KINDS:
            raise WorkloadError(f"unknown region kind {self.kind!r}")
        if self.count < 1:
            raise WorkloadError("region count must be >= 1")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: regions + outer iteration count.

    ``target_dynamic`` is the intended dynamic trace length; the suite
    loader calibrates ``iterations`` to hit it (regions have very
    different per-iteration costs).
    """

    name: str
    regions: Tuple[Region, ...]
    iterations: int = 3000
    target_dynamic: int = 60_000
    note: str = ""

    def with_iterations(self, iterations):
        return replace(self, iterations=max(16, int(iterations)))


@dataclass
class _Segment:
    """Memory segment assigned to one region replica."""

    region: Region
    replica: int
    base: int
    words: int


class _Emitter:
    """Builds the program and records the memory layout."""

    def __init__(self, spec):
        self.spec = spec
        self.builder = ProgramBuilder(spec.name)
        self.segments = []
        self._next_base = 0
        self._acc_cursor = 0
        self._helper_bodies = []
        self._chase_regs = []

    # -- resources --------------------------------------------------------

    def _alloc_segment(self, region, replica, words):
        segment = _Segment(region, replica, self._next_base, words)
        self.segments.append(segment)
        # Pad segments to distinct cache-line-aligned areas.
        self._next_base += words + (16 - words % 16) % 16 + 64
        return segment

    def _acc(self):
        reg = _ACCUMULATORS[self._acc_cursor % len(_ACCUMULATORS)]
        self._acc_cursor += 1
        return reg

    def _label(self, hint):
        return self.builder.fresh_label(hint)

    # -- top level -----------------------------------------------------------

    def emit(self):
        spec = self.spec
        b = self.builder
        b.begin_function("main")
        b.movi(REG_INDEX, 0)
        b.movi(REG_LIMIT, spec.iterations)
        # Pointer-chase registers start at index 0 of their segments.
        chase_count = sum(
            r.count for r in spec.regions if r.kind == "memory"
        )
        for i in range(min(chase_count, len(_CHASE_REGS))):
            b.movi(_CHASE_REGS[i], 0)
        loop_top = self._label("outer")
        finish = self._label("finish")
        b.label(loop_top)
        b.cmpge(2, REG_INDEX, REG_LIMIT)
        b.bnez(2, finish)
        for region in spec.regions:
            for replica in range(region.count):
                self._emit_region(region, replica)
        b.addi(REG_INDEX, REG_INDEX, 1)
        b.jmp(loop_top)
        b.label(finish)
        b.halt()
        b.end_function()
        for emit_helper in self._helper_bodies:
            emit_helper()
        return b.build(), self.segments

    # -- region dispatch -------------------------------------------------------

    def _emit_region(self, region, replica):
        emitters = {
            "simple_hammock": self._emit_simple_hammock,
            "nested_hammock": self._emit_nested_hammock,
            "freq_hammock": self._emit_freq_hammock,
            "short_hammock": self._emit_short_hammock,
            "split": self._emit_split,
            "ret_hammock": self._emit_ret_hammock,
            "diverge_loop": self._emit_loop,
            "long_loop": self._emit_loop,
            "compute": self._emit_compute,
            "memory": self._emit_memory,
        }
        emitters[region.kind](region, replica)

    def _load_input_word(self, segment, dest=3):
        """dest <- segment.base[index]; uses r2 as scratch."""
        b = self.builder
        b.movi(2, segment.base)
        b.add(2, 2, REG_INDEX)
        b.ld(dest, 2, 0)

    def _side(self, n, acc, op_cycle=0):
        """n straight-line instructions accumulating into ``acc``."""
        b = self.builder
        for i in range(n):
            if i % 4 == 3:
                b.xor(acc, acc, imm=(i + op_cycle) * 7 + 1)
            else:
                b.addi(acc, acc, i + 1)

    # -- hammocks ------------------------------------------------------------

    def _emit_simple_hammock(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        acc_then, acc_else = self._acc(), self._acc()
        then_label = self._label("sh_then")
        merge_label = self._label("sh_merge")
        self._load_input_word(segment)
        b.bnez(3, then_label)
        self._side(region.side_insts, acc_else)
        b.jmp(merge_label)
        b.label(then_label)
        self._side(region.side_insts, acc_then, op_cycle=3)
        b.label(merge_label)
        # Post-CFM code is control- AND data-independent of the hammock
        # (the paper's premise): it must not read the side accumulators,
        # or select-µops would serialize it on branch resolution.
        b.addi(2, 2, 1)

    def _emit_short_hammock(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        acc = self._acc()
        then_label = self._label("shs_then")
        merge_label = self._label("shs_merge")
        self._load_input_word(segment)
        b.bnez(3, then_label)
        b.addi(acc, acc, 1)
        b.jmp(merge_label)
        b.label(then_label)
        b.addi(acc, acc, 2)
        b.label(merge_label)
        b.xor(acc, acc, imm=5)

    def _emit_split(self, region, replica):
        # Long divergent sides: reconvergence is ~2×side_insts away,
        # far past the point where dynamic predication pays off.
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        acc_a, acc_b = self._acc(), self._acc()
        then_l = self._label("sp_then")
        merge_l = self._label("sp_merge")
        self._load_input_word(segment)
        b.bnez(3, then_l)
        self._emit_ilp_block(region.side_insts, (acc_a, acc_b))
        b.jmp(merge_l)
        b.label(then_l)
        self._emit_ilp_block(region.side_insts, (acc_b, acc_a))
        b.label(merge_l)
        b.add(acc_a, acc_a, acc_b)

    def _emit_ilp_block(self, n, accs):
        """n straight-line instructions spread over ``accs`` (has ILP)."""
        b = self.builder
        for i in range(n):
            acc = accs[i % len(accs)]
            b.addi(acc, acc, i + 1)

    def _emit_nested_hammock(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        acc1, acc2 = self._acc(), self._acc()
        side = max(2, region.side_insts // 2)
        then_l = self._label("nh_then")
        inner_then_l = self._label("nh_ithen")
        inner_merge_l = self._label("nh_imerge")
        merge_l = self._label("nh_merge")
        self._load_input_word(segment)
        b.and_(4, 3, imm=1)
        b.bnez(4, then_l)
        self._side(region.side_insts, acc1)
        b.jmp(merge_l)
        b.label(then_l)
        b.and_(5, 3, imm=2)
        b.bnez(5, inner_then_l)
        self._side(side, acc2)
        b.jmp(inner_merge_l)
        b.label(inner_then_l)
        self._side(side, acc2, op_cycle=5)
        b.label(inner_merge_l)
        b.addi(acc2, acc2, 9)
        b.label(merge_l)
        b.addi(2, 2, 1)

    def _emit_freq_hammock(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        acc, cold_acc = self._acc(), self._acc()
        then_l = self._label("fh_then")
        merge_l = self._label("fh_merge")
        self._load_input_word(segment)
        b.and_(4, 3, imm=1)
        b.bnez(4, then_l)
        self._side(region.side_insts, acc)
        b.jmp(merge_l)
        b.label(then_l)
        self._side(region.side_insts, acc, op_cycle=7)
        b.and_(5, 3, imm=2)
        b.beqz(5, merge_l)
        # The rare cold path: long enough that any path through it
        # exceeds MAX_INSTR, so Alg-exact rejects this hammock.
        self._side(region.cold_insts, cold_acc)
        b.label(merge_l)
        b.addi(2, 2, 3)

    def _emit_ret_hammock(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        helper_name = f"ret_helper_{replica}_{segment.base}"
        acc = self._acc()
        b.movi(REG_ARG, segment.base)
        b.add(REG_ARG, REG_ARG, REG_INDEX)
        b.call(helper_name)
        b.addi(acc, acc, 6)

        side = region.side_insts

        def emit_helper(name=helper_name, side=side):
            hb = self.builder
            hb.begin_function(name)
            then_l = self._label("rh_then")
            hb.ld(3, REG_ARG, 0)
            hb.bnez(3, then_l)
            self._side(side, 6)
            hb.ret()
            hb.label(then_l)
            self._side(side, 7, op_cycle=11)
            hb.ret()
            hb.end_function()

        self._helper_bodies.append(emit_helper)

    # -- loops ----------------------------------------------------------------

    def _emit_loop(self, region, replica):
        # The body spreads work over three accumulators, reset each
        # outer iteration: dependence chains stay iteration-local, as
        # in real code (a program-length serial chain would make every
        # pipeline flush bubble the global critical path).
        b = self.builder
        segment = self._alloc_segment(region, replica, self.spec.iterations)
        accs = [self._acc() for _ in range(3)]
        top_l = self._label("loop_top")
        self._load_input_word(segment, dest=8)
        if region.gate_prob < 1.0:
            # Gated shape: the skip side runs a straight pad longer than
            # MAX_INSTR before reconverging, so the gate branch has no
            # reachable merge point within the compiler's analysis
            # bounds and never becomes a diverge-branch candidate — it
            # exists purely to modulate the loop's profile weight.
            skip_l = self._label("loop_skip")
            after_l = self._label("loop_after")
            b.beqz(8, skip_l)
            for acc in accs:
                b.movi(acc, replica)
            b.label(top_l)
            for i in range(region.body_insts):
                b.addi(accs[i % len(accs)], accs[i % len(accs)], i + 1)
            b.addi(8, 8, -1)
            b.bnez(8, top_l)
            b.jmp(after_l)
            b.label(skip_l)
            self._emit_ilp_block(56, (accs[0], accs[1]))
            b.label(after_l)
        else:
            for acc in accs:
                b.movi(acc, replica)
            b.label(top_l)
            for i in range(region.body_insts):
                b.addi(accs[i % len(accs)], accs[i % len(accs)], i + 1)
            b.addi(8, 8, -1)
            b.bnez(8, top_l)
        b.add(accs[0], accs[0], accs[1])

    # -- compute / memory -------------------------------------------------------

    def _emit_compute(self, region, replica):
        # Spread work over several accumulators so compute regions have
        # ILP, and re-seed them every iteration so dependence chains
        # stay iteration-local (real integer code is not one serial
        # chain spanning the whole program).
        b = self.builder
        accs = [self._acc() for _ in range(6)]
        for k, acc in enumerate(accs):
            b.movi(acc, replica * 3 + k)
        for i in range(region.body_insts):
            acc = accs[i % len(accs)]
            if i % 7 == 6:
                b.xor(acc, acc, imm=i * 11 + 3)
            else:
                b.addi(acc, acc, i + 1)

    def _emit_memory(self, region, replica):
        b = self.builder
        segment = self._alloc_segment(
            region, replica, region.region_words
        )
        chase_reg = _CHASE_REGS[len(self._chase_regs) % len(_CHASE_REGS)]
        self._chase_regs.append(chase_reg)
        acc = self._acc()
        for _ in range(region.loads):
            b.movi(4, segment.base)
            b.add(4, 4, chase_reg)
            b.ld(chase_reg, 4, 0)
        b.add(acc, acc, chase_reg)


def build_program(spec):
    """Build ``spec``; returns ``(program, segments)``.

    ``segments`` describe the memory layout: which words each region
    replica reads.  :func:`fill_memory` populates them for an input
    set.
    """
    return _Emitter(spec).emit()


def fill_memory(spec, segments, seed, p_shift=0.0, iter_scale=1.0):
    """Generate the input memory image for one input set.

    ``p_shift`` perturbs branch biases and ``iter_scale`` scales loop
    trip counts — this is how the "train" input set differs from the
    "reduced" one (§7.3).
    """
    rng = BehaviorRNG(seed)
    memory = {}
    n = spec.iterations
    for segment in segments:
        region = segment.region
        kind = region.kind
        if kind in ("simple_hammock", "short_hammock", "ret_hammock",
                    "split"):
            bits = _behavior_bits(rng, region, n, p_shift)
            for i, bit in enumerate(bits):
                memory[segment.base + i] = bit
        elif kind == "nested_hammock":
            outer = _behavior_bits(rng, region, n, p_shift)
            inner = rng.biased(n, min(0.95, region.p + 0.2))
            for i in range(n):
                memory[segment.base + i] = outer[i] | (inner[i] << 1)
        elif kind == "freq_hammock":
            outer = _behavior_bits(rng, region, n, p_shift)
            rare = rng.biased(n, region.rare_prob)
            for i in range(n):
                memory[segment.base + i] = outer[i] | (rare[i] << 1)
        elif kind in ("diverge_loop", "long_loop"):
            mean = max(1.0, region.mean_iters * iter_scale)
            if region.trip_kind == "geometric":
                trips = rng.geometric_trips(n, mean)
            elif region.trip_kind == "jittery":
                trips = rng.jittery_trips(n, mean)
            elif region.trip_kind == "uniform":
                lo = max(1, int(mean * 0.5))
                hi = max(lo + 1, int(mean * 1.5))
                trips = rng.uniform_trips(n, lo, hi)
            else:
                trips = rng.constant_trips(n, max(1, int(mean)))
            if region.gate_prob < 1.0:
                # Blocky gating: long on/off phases keep the gate branch
                # highly predictable (it exists to modulate the loop's
                # *profile weight*, not to add a hard branch).
                period = max(2, round(1.0 / region.gate_prob))
                block = 32
                trips = [
                    t if (i // block) % period == 0 else 0
                    for i, t in enumerate(trips)
                ]
            for i, t in enumerate(trips):
                memory[segment.base + i] = t
        elif kind == "memory":
            chain = rng.pointer_chain(segment.words, segment.words)
            for i, nxt in enumerate(chain):
                memory[segment.base + i] = nxt
        elif kind == "compute":
            pass
        else:  # pragma: no cover - region kinds are closed
            raise WorkloadError(f"no input generator for {kind!r}")
    return memory


def _behavior_bits(rng, region, n, p_shift):
    p = min(0.98, max(0.02, region.p + p_shift))
    if region.behavior == "biased":
        return rng.biased(n, p)
    if region.behavior == "markov":
        return rng.markov(n, p_same=p)
    if region.behavior == "pattern":
        return rng.pattern(n, noise=min(0.45, max(0.0, region.p + p_shift)))
    if region.behavior == "bursty":
        # ``p`` is the target misprediction rate; hard phases are fair
        # coins, so the hard fraction is twice that.
        return rng.bursty(n, hard_fraction=2.0 * p)
    raise WorkloadError(f"unknown behavior {region.behavior!r}")
