"""Synthetic SPEC-like benchmark suite.

The paper evaluates 12 SPEC CPU2000 + 5 SPEC 95 integer benchmarks;
those binaries and inputs are unavailable here, so this package
generates 17 synthetic programs *named after them*, each built from
control-flow regions (simple/nested/frequently/short/return-merged
hammocks, diverge and long loops, memory and compute blocks) whose
branch behaviour is driven by generated input data.  Region mixes and
branch-predictability parameters are calibrated so each benchmark's
qualitative character matches Table 2 and the per-benchmark
observations of §7 (e.g. eon/perlbmk/li are simple-hammock-heavy,
gzip/parser have hot mispredicted loops, twolf/go merge at returns,
mcf is memory-bound).

Each benchmark has two input sets, ``reduced`` (the paper's MinneSPEC
stand-in, default for both profiling and runs) and ``train`` (for the
§7.3 input-set sensitivity experiments).
"""

from repro.workloads.behaviors import BehaviorRNG
from repro.workloads.generator import BenchmarkSpec, Region, build_program
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    BENCHMARK_SPECS,
    Workload,
    load_benchmark,
)

__all__ = [
    "BehaviorRNG",
    "BenchmarkSpec",
    "Region",
    "build_program",
    "BENCHMARK_NAMES",
    "BENCHMARK_SPECS",
    "Workload",
    "load_benchmark",
]
