"""The parallel experiment-execution engine (plan → execute → gather).

Every figure/table driver decomposes into independent *cells* — one
(benchmark, input set, configuration) simulation each.  A driver
*plans* by building a list of :class:`Job` objects around a
module-level cell function, *executes* them with :func:`execute`, and
*gathers* the results, which come back *in plan order* regardless of
completion order — so parallel runs are bit-identical to serial ones
by construction.

``jobs=1`` (the library default) runs the cells inline in the calling
process: no pool, no pickling, identical to the historical serial
path.  ``jobs>1`` fans out over a :class:`ProcessPoolExecutor`.  Each
worker job runs under a *fresh* telemetry bundle
(:class:`~repro.obs.metrics.MetricsRegistry` +
:class:`~repro.obs.timers.PhaseProfile`); the snapshots travel back
with the result and are folded into the parent's active bundle in plan
order, so ``--metrics`` output and run manifests account for work done
in workers exactly as if it had run inline.

Workers are forked (the POSIX default), so they inherit the parent's
warm in-memory caches and any artifact-cache overrides; per-worker
cache reuse across that worker's jobs comes for free from the module
state in :mod:`repro.experiments.runner`.  The simulation-engine
default (:func:`repro.uarch.set_default_engine`, set by
``--sim-engine``) is plain module state and rides along the same way,
so cells simulate with the engine the parent selected — and since both
engines are bit-identical, plan-order gathering keeps parallel runs
reproducible either way.

Cell functions must be module-level (picklable) and depend only on
their arguments — which the experiment pipeline already guarantees:
artifact building and simulation are deterministic functions of
(benchmark, input set, scale, config).
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.obs import tracectx
from repro.obs.context import get_metrics, get_phases, telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import span
from repro.obs.timers import PhaseProfile


class JobError(RuntimeError):
    """A planned job failed in a worker.

    Carries the failing :attr:`Job.label` so a sweep that dies at cell
    400/500 says *which* cell, not just what the worker raised; the
    original exception is chained as ``__cause__``.
    """

    def __init__(self, label, cause):
        super().__init__(f"job {label!r} failed: {cause}")
        self.label = label


class Job:
    """One unit of work: a picklable callable plus its arguments."""

    __slots__ = ("fn", "args", "label")

    def __init__(self, fn, *args, label=None):
        self.fn = fn
        self.args = args
        self.label = label if label is not None else getattr(
            fn, "__name__", "job"
        )

    def run(self):
        return self.fn(*self.args)

    def __repr__(self):
        return f"Job({self.label}, args={self.args!r})"


def default_jobs():
    """The CLI default for ``--jobs``: one per available CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs):
    """Normalize a ``jobs`` argument: ``None`` means serial (1)."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_job(fn, args, trace=None, label=None):
    """Worker-side wrapper: isolate telemetry and ship snapshots back.

    The full hierarchical span snapshot travels back (not the flat
    phase view): merging it into the parent's span tree carries nested
    spans across the process boundary, and the parent's
    :class:`PhaseProfile` — a depth-1 view over that tree — follows
    automatically without double counting.

    ``trace`` is an optional distributed-trace propagation payload
    (:meth:`~repro.obs.tracectx.TraceContext.propagation`): when
    present the job's ``cell`` span — and everything nested inside it —
    lands in the shared trace spool, parented to the span that was
    active in the parent when the plan was submitted.
    """
    registry = MetricsRegistry()
    phases = PhaseProfile()
    ctx = tracectx.TraceContext.from_propagation(
        trace, service="exec-worker"
    )
    with telemetry(metrics=registry, phases=phases):
        with tracectx.activate(ctx):
            with span("cell", attrs={"job": label} if label else None):
                result = fn(*args)
    return result, registry.as_dict(), phases.spans_as_dict()


def execute(jobs_list, jobs=None):
    """Run a planned list of :class:`Job` objects; gather in plan order.

    Returns the list of job results, ordered like ``jobs_list``.  With
    ``jobs`` <= 1 (or fewer than two jobs) everything runs inline under
    the caller's telemetry; otherwise a process pool of ``jobs``
    workers is used and worker telemetry snapshots are merged into the
    active registry/profile, also in plan order.

    A failing job raises in the parent either way; on the pool path it
    is wrapped in :class:`JobError` with the failing job's label, the
    outstanding futures are cancelled so the pool drains instead of
    running the rest of the plan to completion, and *no* worker
    telemetry is merged — snapshots are folded into the parent's
    registry/profile only once every job has succeeded, so ``--metrics``
    output never reports a half-gathered plan.
    """
    planned = list(jobs_list)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(planned) <= 1:
        results = []
        for job in planned:
            # Same ``cell`` span as the worker path, so serial and
            # parallel runs produce structurally identical span trees
            # (and serial ``--trace`` runs carry span.end events).
            with span("cell", attrs={"job": job.label}):
                results.append(job.run())
        return results

    metrics = get_metrics()
    phases = get_phases()
    ctx = tracectx.current()
    trace = ctx.propagation() if ctx is not None else None
    payloads = []
    max_workers = min(workers, len(planned))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_run_job, job.fn, job.args, trace, job.label)
            for job in planned
        ]
        try:
            for job, future in zip(planned, futures):
                try:
                    payloads.append(future.result())
                except Exception as exc:
                    raise JobError(job.label, exc) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    results = []
    for result, metrics_snapshot, spans_snapshot in payloads:
        metrics.merge_snapshot(metrics_snapshot)
        phases.merge_spans(spans_snapshot)
        results.append(result)
    return results


def execute_starmap(fn, argtuples, jobs=None):
    """Shorthand: plan one :class:`Job` per argument tuple and execute."""
    return execute([Job(fn, *args) for args in argtuples], jobs=jobs)
