"""Experiment execution: process-pool fan-out and the persistent
artifact cache.

:mod:`repro.exec.engine` turns each figure/table driver into a planned
list of independent (benchmark, input set, config) cells and runs them
serially or over a process pool with deterministic, plan-ordered
gathering.  :mod:`repro.exec.artifact_cache` keeps traces and profiles
on disk, content-addressed, across processes and invocations.  See
``docs/performance.md``.
"""

from repro.exec import artifact_cache
from repro.exec.engine import (
    Job,
    JobError,
    default_jobs,
    execute,
    execute_starmap,
    resolve_jobs,
)

__all__ = [
    "Job",
    "JobError",
    "artifact_cache",
    "default_jobs",
    "execute",
    "execute_starmap",
    "resolve_jobs",
]
