"""Persistent, content-addressed artifact cache.

Functional traces and profiles are the expensive artifacts of every
experiment — regenerating them dominates wall-clock time.  The
in-memory :class:`~repro.experiments.runner.KeyedCache` only helps
within one process; this module adds an on-disk layer so repeated
invocations (and every worker of a parallel run) reuse them.

Entries are *content-addressed*: the key is a SHA-256 over the
program's disassembly and function layout, the memory image (the input
set), the run budget, and the profiler configuration fingerprint.  Any
change to the workload generator, the input set, the scale, or the
profiling predictors therefore produces a different key — a miss —
rather than a stale hit.  There is no invalidation logic to get wrong.

On-disk format (one file per entry, named ``<key>.dmpart``)::

    MAGIC (8 bytes) | crc32(body) (4 bytes, little-endian) | body

where ``body`` is a pickle of a dict holding the compact trace's
column bytes and the :class:`~repro.profiling.profiler.ProfileData`.
A bad magic, short file, CRC mismatch, or unpickling error is treated
as corruption: the entry is dropped and the caller rebuilds — the
cache can never make a run fail, only make it faster.  All outcomes
are counted in the active metrics registry
(``cache_disk_{hits,misses,corrupt,writes}_total``).

The cache root defaults to ``~/.cache/dmp-repro`` and can be moved
with the ``REPRO_CACHE_DIR`` environment variable or the CLI's
``--cache-dir`` flag (:func:`set_cache_dir`); ``REPRO_CACHE_DISABLE=1``
turns the disk layer off entirely.
"""

import hashlib
import logging
import os
import pickle
import struct
import tempfile
import zlib

from repro.emulator import Trace
from repro.obs.context import get_metrics

log = logging.getLogger(__name__)

#: Bump when the on-disk body layout changes; stale-format files from
#: older versions simply miss (the version is part of the key).
FORMAT_VERSION = 1

#: File magic: identifies the format and its major version.
MAGIC = b"DMPART01"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "dmp-repro")

ENTRY_SUFFIX = ".dmpart"

#: Process-wide override installed by the CLI (``--cache-dir``) or by
#: tests; ``None`` defers to the environment / default.
_dir_override = None
_disabled_override = None


def set_cache_dir(path):
    """Override the cache root for this process (``None`` resets)."""
    global _dir_override
    _dir_override = path


def set_disabled(disabled):
    """Force the disk cache on/off for this process (``None`` resets)."""
    global _disabled_override
    _disabled_override = disabled


def cache_dir():
    """The active cache root (not necessarily created yet)."""
    if _dir_override is not None:
        return os.path.abspath(os.path.expanduser(_dir_override))
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return os.path.abspath(os.path.expanduser(env))
    return os.path.expanduser(DEFAULT_CACHE_DIR)


def enabled():
    """True when the disk layer should be consulted at all."""
    if _disabled_override is not None:
        return not _disabled_override
    return os.environ.get(ENV_CACHE_DISABLE, "") not in ("1", "true", "yes")


# -- keys ----------------------------------------------------------------


def program_fingerprint(program):
    """SHA-256 over the disassembly and function layout."""
    digest = hashlib.sha256()
    for inst in program.instructions:
        digest.update(inst.format().encode())
        digest.update(b"\n")
    for function in program.functions:
        digest.update(
            f"{function.name}:{function.start}:{function.end};".encode()
        )
    return digest.hexdigest()


def memory_fingerprint(memory):
    """SHA-256 over the sparse word-memory image (the input set)."""
    digest = hashlib.sha256()
    for address in sorted(memory):
        digest.update(struct.pack("<q", address))
        digest.update(repr(memory[address]).encode())
    return digest.hexdigest()


def artifact_key(workload, profiler_fingerprint):
    """The content-addressed key for one (workload, profiler config)."""
    material = "|".join((
        f"v{FORMAT_VERSION}",
        workload.name,
        workload.input_set,
        program_fingerprint(workload.program),
        memory_fingerprint(workload.memory),
        str(workload.max_instructions),
        profiler_fingerprint,
    ))
    return hashlib.sha256(material.encode()).hexdigest()


# -- load / store --------------------------------------------------------


def _entry_path(key):
    return os.path.join(cache_dir(), key + ENTRY_SUFFIX)


def load(key):
    """The cached ``(trace, profile)`` for ``key`` or ``None``.

    Corrupt or unreadable entries are removed and reported as a miss
    (plus ``cache_disk_corrupt_total``) so the caller rebuilds.
    """
    if not enabled():
        return None
    metrics = get_metrics()
    path = _entry_path(key)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        metrics.counter("cache_disk_misses_total").inc()
        return None
    try:
        entry = _decode(blob)
    except Exception as exc:
        log.warning("corrupt artifact cache entry %s: %s — rebuilding",
                    path, exc)
        metrics.counter("cache_disk_corrupt_total").inc()
        metrics.counter("cache_disk_misses_total").inc()
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    metrics.counter("cache_disk_hits_total").inc()
    return entry


def store(key, trace, profile):
    """Write one entry atomically; failures are logged, never raised."""
    if not enabled():
        return None
    metrics = get_metrics()
    path = _entry_path(key)
    blob = _encode(trace, profile)
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=cache_dir(), suffix=ENTRY_SUFFIX + ".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
    except OSError as exc:
        log.warning("artifact cache write failed for %s: %s", path, exc)
        metrics.counter("cache_disk_write_errors_total").inc()
        return None
    metrics.counter("cache_disk_writes_total").inc()
    return path


def _encode(trace, profile):
    if not isinstance(trace, Trace):
        compact = Trace()
        for dyn in trace:
            compact.record(dyn.pc, dyn.next_pc, dyn.address)
        trace = compact
    pc_bytes, next_pc_bytes, address_bytes = trace.to_bytes()
    body = pickle.dumps({
        "format": FORMAT_VERSION,
        "pcs": pc_bytes,
        "next_pcs": next_pc_bytes,
        "addresses": address_bytes,
        "profile": profile,
    }, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + struct.pack("<I", zlib.crc32(body)) + body


def _decode(blob):
    header = len(MAGIC) + 4
    if len(blob) < header or blob[:len(MAGIC)] != MAGIC:
        raise ValueError("bad magic / truncated header")
    (crc,) = struct.unpack_from("<I", blob, len(MAGIC))
    body = blob[header:]
    if zlib.crc32(body) != crc:
        raise ValueError("checksum mismatch")
    payload = pickle.loads(body)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"format version {payload.get('format')!r}")
    trace = Trace.from_bytes(
        payload["pcs"], payload["next_pcs"], payload["addresses"]
    )
    return trace, payload["profile"]


# -- maintenance ---------------------------------------------------------


def format_size(num_bytes):
    """Human-readable size: ``0 B``, ``512 B``, ``3.4 KiB``, ``1.2 MiB``."""
    if num_bytes < 1024:
        return f"{num_bytes} B"
    value = float(num_bytes)
    for unit in ("KiB", "MiB", "GiB", "TiB"):
        value /= 1024.0
        if value < 1024.0:
            return f"{value:.1f} {unit}"
    return f"{value:.1f} PiB"


def info():
    """Summary of the cache directory for ``python -m repro cache info``.

    The ``dir``/``enabled``/``entries``/``bytes``/``format_version``
    keys are a stable machine-readable contract; ``kinds`` adds
    per-kind entry/byte counts (``artifact`` entries plus any ``tmp``
    leftovers from interrupted writes).
    """
    root = cache_dir()
    entries = 0
    total_bytes = 0
    kinds = {}
    if os.path.isdir(root):
        for name in os.listdir(root):
            if name.endswith(ENTRY_SUFFIX):
                kind = "artifact"
            elif name.endswith(".tmp"):
                kind = "tmp"
            else:
                continue
            try:
                size = os.path.getsize(os.path.join(root, name))
            except OSError:
                size = 0
            bucket = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            if kind == "artifact":
                entries += 1
                total_bytes += size
    return {
        "dir": root,
        "enabled": enabled(),
        "entries": entries,
        "bytes": total_bytes,
        "kinds": kinds,
        "format_version": FORMAT_VERSION,
    }


def clear():
    """Remove every cache entry; returns the number removed."""
    root = cache_dir()
    removed = 0
    if os.path.isdir(root):
        for name in os.listdir(root):
            if name.endswith(ENTRY_SUFFIX) or name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(root, name))
                    removed += 1
                except OSError:
                    pass
    return removed
