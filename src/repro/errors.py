"""Exception hierarchy shared across the package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblerError(ReproError):
    """Raised when assembly text cannot be parsed or resolved."""


class EmulationError(ReproError):
    """Raised when functional execution encounters an illegal state."""


class CFGError(ReproError):
    """Raised for malformed control-flow graphs or invalid queries."""


class ProfileError(ReproError):
    """Raised when profiling data is missing or inconsistent."""


class SimulationError(ReproError):
    """Raised by the cycle-level timing simulator."""


class SelectionError(ReproError):
    """Raised by diverge-branch selection when inputs are invalid."""


class WorkloadError(ReproError):
    """Raised by the synthetic workload generator."""
