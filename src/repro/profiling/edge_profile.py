"""Edge profiles: per-branch taken/not-taken counts.

Edge profiling assumes branch directions are independent of each other
(footnote 6 of the paper); the path enumeration in :mod:`repro.cfg.paths`
multiplies these per-edge probabilities along paths under exactly that
assumption.
"""


class EdgeProfile:
    """Taken/not-taken execution counts per conditional branch pc."""

    def __init__(self):
        self._taken = {}
        self._not_taken = {}

    def record(self, pc, taken):
        if taken:
            self._taken[pc] = self._taken.get(pc, 0) + 1
        else:
            self._not_taken[pc] = self._not_taken.get(pc, 0) + 1

    def exec_count(self, pc):
        """How many times the branch at ``pc`` executed."""
        return self._taken.get(pc, 0) + self._not_taken.get(pc, 0)

    def taken_count(self, pc):
        return self._taken.get(pc, 0)

    def taken_prob(self, pc, default=0.5):
        """P(taken) for the branch at ``pc``; ``default`` if unexecuted."""
        total = self.exec_count(pc)
        if total == 0:
            return default
        return self._taken.get(pc, 0) / total

    def edge_prob(self, pc, taken, default=0.5):
        """Profiled probability of one direction of the branch at ``pc``.

        This is the ``edge_prob`` callable signature
        :func:`repro.cfg.paths.enumerate_paths` expects.
        """
        p_taken = self.taken_prob(pc, default)
        return p_taken if taken else 1.0 - p_taken

    def executed_branch_pcs(self):
        """All branch pcs seen during profiling."""
        return sorted(set(self._taken) | set(self._not_taken))

    def signature(self):
        """Canonical content tuple: ``(pc, taken, not_taken)`` sorted by pc."""
        return tuple(
            (pc, self._taken.get(pc, 0), self._not_taken.get(pc, 0))
            for pc in self.executed_branch_pcs()
        )

    def remapped(self, pc_map):
        """Counts re-keyed through ``pc_map``; unmapped pcs are dropped.

        Used when a transform pass rewrites the program: surviving
        branches keep their observations at their new pcs, branches the
        transform removed disappear from the profile.
        """
        other = EdgeProfile()
        other._taken = {
            pc_map[pc]: count
            for pc, count in self._taken.items() if pc in pc_map
        }
        other._not_taken = {
            pc_map[pc]: count
            for pc, count in self._not_taken.items() if pc in pc_map
        }
        return other
