"""The profiling pass: one emulator run, all profiles.

The profiler mirrors the paper's methodology (§6): the program runs to
completion on a *profiling input set*, with a branch predictor and a
JRS confidence estimator in the loop so that per-branch misprediction
rates and the estimator's accuracy (Acc_Conf) are measured rather than
assumed.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.branchpred import JRSConfidenceEstimator, PerceptronPredictor
from repro.emulator import ArchState, Emulator
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.loop_profile import LoopProfile


@dataclass
class ProfileData:
    """Everything the compiler algorithms consume."""

    edge_profile: EdgeProfile
    branch_profile: BranchProfile
    loop_profile: LoopProfile
    total_instructions: int = 0
    total_branches: int = 0
    total_mispredictions: int = 0
    measured_acc_conf: float = 0.0
    halted: bool = True

    @property
    def mpki(self):
        """Mispredictions per kilo-instruction during the profiling run."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.total_mispredictions / self.total_instructions

    def edge_prob(self, pc, taken):
        """Convenience passthrough used by the path enumerator."""
        return self.edge_profile.edge_prob(pc, taken)

    def branch_exec_prob(self, pc):
        """Fraction of dynamic instructions that are this branch."""
        if self.total_instructions == 0:
            return 0.0
        return self.edge_profile.exec_count(pc) / self.total_instructions

    def cache_key(self):
        """Stable content key over everything selection reads.

        Covers the edge, branch, and loop profiles plus the run totals:
        any profile change that could alter a selection decision changes
        the key.  Cached after the first call — profiles are sealed by
        the time the compiler sees them.
        """
        key = getattr(self, "_cache_key", None)
        if key is None:
            import zlib

            text = repr((
                self.total_instructions,
                self.total_branches,
                self.total_mispredictions,
                round(self.measured_acc_conf, 9),
                self.halted,
                self.edge_profile.signature(),
                self.branch_profile.signature(),
                self.loop_profile.signature(),
            ))
            key = f"{zlib.crc32(text.encode('utf-8')):08x}"
            self._cache_key = key
        return key

    def remapped(self, pc_map):
        """This profile translated across a program transform.

        ``pc_map`` maps every *surviving* old pc to its new pc;
        branches the transform removed (e.g. melded hammocks) are
        absent and their observations leave the per-pc profiles *and*
        the branch/misprediction run totals — downstream selection sees
        the profile the transformed program would have produced.
        ``total_instructions`` is kept: it is the profiling run's
        dynamic length, used only for execution-frequency ratios.

        Returns a fresh :class:`ProfileData` (so ``cache_key`` re-keys
        naturally); the original is untouched.
        """
        dropped_branches = 0
        dropped_mispredictions = 0
        for pc in self.edge_profile.executed_branch_pcs():
            if pc not in pc_map:
                dropped_branches += self.branch_profile.exec_count(pc)
                dropped_mispredictions += \
                    self.branch_profile.misprediction_count(pc)
        return ProfileData(
            edge_profile=self.edge_profile.remapped(pc_map),
            branch_profile=self.branch_profile.remapped(pc_map),
            loop_profile=self.loop_profile.remapped(pc_map),
            total_instructions=self.total_instructions,
            total_branches=self.total_branches - dropped_branches,
            total_mispredictions=(
                self.total_mispredictions - dropped_mispredictions
            ),
            measured_acc_conf=self.measured_acc_conf,
            halted=self.halted,
        )


class ProfileCollector:
    """Branch-observation half of one profiling pass.

    Separated from :class:`Profiler` so a *single* emulator run can
    collect the functional trace and the profile together: the
    experiment runner passes :attr:`on_branch` to the traced run and
    calls :meth:`finish` afterwards.  The observations are identical to
    a dedicated profiling run — the emulator's architectural behaviour
    does not depend on the hook.
    """

    def __init__(self, predictor, confidence):
        self.predictor = predictor
        self.confidence = confidence
        self.edge_profile = EdgeProfile()
        self.branch_profile = BranchProfile()
        self.loop_profile = LoopProfile()
        self.branches = 0
        self.mispredictions = 0

    def on_branch(self, pc, taken):
        """The emulator ``on_branch`` callback (hot path)."""
        self.branches += 1
        predictor = self.predictor
        predicted = predictor.predict(pc)
        predictor.update(pc, taken)
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        confidence = self.confidence
        low_conf = confidence.is_low_confidence(pc)
        confidence.update(pc, mispredicted, was_low_confidence=low_conf)
        self.edge_profile.record(pc, taken)
        self.branch_profile.record(pc, mispredicted)
        self.loop_profile.record(pc, taken)

    def finish(self, result):
        """Seal the profiles; returns the :class:`ProfileData`."""
        self.loop_profile.finish()
        return ProfileData(
            edge_profile=self.edge_profile,
            branch_profile=self.branch_profile,
            loop_profile=self.loop_profile,
            total_instructions=result.instruction_count,
            total_branches=self.branches,
            total_mispredictions=self.mispredictions,
            measured_acc_conf=self.confidence.pvn,
            halted=result.halted,
        )


class Profiler:
    """Runs a program once and collects all profiles.

    Parameters
    ----------
    predictor:
        The in-the-loop branch predictor; defaults to the same
        perceptron predictor the Table 1 machine fetches with, so
        profiled misprediction rates match run-time behaviour.
    confidence:
        Confidence estimator used to measure Acc_Conf; defaults to the
        Table 1 enhanced JRS estimator.
    """

    def __init__(self, predictor=None, confidence=None):
        self.predictor = predictor if predictor is not None \
            else PerceptronPredictor()
        self.confidence = confidence if confidence is not None \
            else JRSConfidenceEstimator(history_bits=0)

    def collector(self):
        """A fresh :class:`ProfileCollector` (resets the predictors).

        Hand its ``on_branch`` to any emulator run — typically the same
        run that records the functional trace — then call ``finish``.
        """
        self.predictor.reset()
        self.confidence.reset()
        return ProfileCollector(self.predictor, self.confidence)

    def fingerprint(self):
        """Stable description of the profiling configuration.

        Part of the persistent artifact cache key: a different
        predictor or estimator geometry must produce a cache miss.
        """
        predictor = self.predictor
        confidence = self.confidence
        return (
            f"{type(predictor).__name__}"
            f"({getattr(predictor, 'num_perceptrons', '')},"
            f"{getattr(predictor, 'history_bits', '')})/"
            f"{type(confidence).__name__}"
            f"({getattr(confidence, 'num_entries', '')},"
            f"{getattr(confidence, 'history_bits', '')},"
            f"{getattr(confidence, 'threshold', '')})"
        )

    def profile(self, program, memory=None, max_instructions=1_000_000):
        """Run ``program`` and return its :class:`ProfileData`."""
        collector = self.collector()
        emulator = Emulator(program)
        result = emulator.run(
            state=ArchState(memory=memory),
            max_instructions=max_instructions,
            on_branch=collector.on_branch,
        )
        return collector.finish(result)
