"""The profiling pass: one emulator run, all profiles.

The profiler mirrors the paper's methodology (§6): the program runs to
completion on a *profiling input set*, with a branch predictor and a
JRS confidence estimator in the loop so that per-branch misprediction
rates and the estimator's accuracy (Acc_Conf) are measured rather than
assumed.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.branchpred import JRSConfidenceEstimator, PerceptronPredictor
from repro.emulator import ArchState, Emulator
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.loop_profile import LoopProfile


@dataclass
class ProfileData:
    """Everything the compiler algorithms consume."""

    edge_profile: EdgeProfile
    branch_profile: BranchProfile
    loop_profile: LoopProfile
    total_instructions: int = 0
    total_branches: int = 0
    total_mispredictions: int = 0
    measured_acc_conf: float = 0.0
    halted: bool = True

    @property
    def mpki(self):
        """Mispredictions per kilo-instruction during the profiling run."""
        if self.total_instructions == 0:
            return 0.0
        return 1000.0 * self.total_mispredictions / self.total_instructions

    def edge_prob(self, pc, taken):
        """Convenience passthrough used by the path enumerator."""
        return self.edge_profile.edge_prob(pc, taken)

    def branch_exec_prob(self, pc):
        """Fraction of dynamic instructions that are this branch."""
        if self.total_instructions == 0:
            return 0.0
        return self.edge_profile.exec_count(pc) / self.total_instructions


class Profiler:
    """Runs a program once and collects all profiles.

    Parameters
    ----------
    predictor:
        The in-the-loop branch predictor; defaults to the same
        perceptron predictor the Table 1 machine fetches with, so
        profiled misprediction rates match run-time behaviour.
    confidence:
        Confidence estimator used to measure Acc_Conf; defaults to the
        Table 1 enhanced JRS estimator.
    """

    def __init__(self, predictor=None, confidence=None):
        self.predictor = predictor if predictor is not None \
            else PerceptronPredictor()
        self.confidence = confidence if confidence is not None \
            else JRSConfidenceEstimator(history_bits=0)

    def profile(self, program, memory=None, max_instructions=1_000_000):
        """Run ``program`` and return its :class:`ProfileData`."""
        self.predictor.reset()
        self.confidence.reset()
        edge_profile = EdgeProfile()
        branch_profile = BranchProfile()
        loop_profile = LoopProfile()
        counters = {"branches": 0, "mispredictions": 0}

        predictor = self.predictor
        confidence = self.confidence

        def on_branch(pc, taken):
            counters["branches"] += 1
            predicted = predictor.predict(pc)
            predictor.update(pc, taken)
            mispredicted = predicted != taken
            if mispredicted:
                counters["mispredictions"] += 1
            low_conf = confidence.is_low_confidence(pc)
            confidence.update(pc, mispredicted, was_low_confidence=low_conf)
            edge_profile.record(pc, taken)
            branch_profile.record(pc, mispredicted)
            loop_profile.record(pc, taken)

        emulator = Emulator(program)
        result = emulator.run(
            state=ArchState(memory=memory),
            max_instructions=max_instructions,
            on_branch=on_branch,
        )
        loop_profile.finish()

        return ProfileData(
            edge_profile=edge_profile,
            branch_profile=branch_profile,
            loop_profile=loop_profile,
            total_instructions=result.instruction_count,
            total_branches=counters["branches"],
            total_mispredictions=counters["mispredictions"],
            measured_acc_conf=confidence.pvn,
            halted=result.halted,
        )
