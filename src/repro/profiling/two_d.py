"""2D-profiling: detecting input-dependent branches in a single run.

Implements the mechanism of Kim, Suleman, Mutlu & Patt, "2D-profiling:
Detecting input-dependent branches with a single input data set" — the
scheme this paper's §8.3 proposes folding into diverge-branch
selection: *"to select only possibly mispredicted branches as diverge
branches.  Excluding always easy-to-predict branches from selection
... would reduce the static code size and also reduce the potential
for aliasing in the confidence estimator."*

The insight: a branch whose prediction accuracy varies across *phases
of one run* is likely to vary across *input sets* too.  So instead of
one scalar misprediction rate per branch (1D), collect a time series —
the second dimension — by slicing the profiling run into intervals and
recording per-branch accuracy per slice.  A branch is flagged
*input-dependent* when the variability of its per-slice accuracy
exceeds a threshold.

Integration with selection: :meth:`TwoDProfile.keep_branch` implements
the §8.3 rule — drop a branch only when it is easy *and* phase-stable
(an always-easy branch); keep hard branches and easy-but-volatile ones
(they may be hard on other inputs).
"""

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.branchpred import PerceptronPredictor
from repro.emulator import ArchState, Emulator


@dataclass
class BranchPhaseStats:
    """Per-slice accuracy series for one static branch."""

    pc: int
    executions: int
    mispredictions: int
    slice_rates: List[float]

    @property
    def misprediction_rate(self):
        if self.executions == 0:
            return 0.0
        return self.mispredictions / self.executions

    @property
    def phase_stddev(self):
        """Standard deviation of per-slice misprediction rates."""
        rates = self.slice_rates
        if len(rates) < 2:
            return 0.0
        mean = sum(rates) / len(rates)
        variance = sum((r - mean) ** 2 for r in rates) / (len(rates) - 1)
        return math.sqrt(variance)


class TwoDProfile:
    """The collected 2D profile: per-branch phase statistics."""

    def __init__(self, branches, slice_length, min_executions=32,
                 stddev_threshold=0.05, easy_rate=0.03):
        self._branches: Dict[int, BranchPhaseStats] = branches
        self.slice_length = slice_length
        self.min_executions = min_executions
        self.stddev_threshold = stddev_threshold
        self.easy_rate = easy_rate

    def get(self, pc):
        """The :class:`BranchPhaseStats` of ``pc`` or None."""
        return self._branches.get(pc)

    def branch_pcs(self):
        return sorted(self._branches)

    def is_input_dependent(self, pc):
        """High phase variability → likely input-dependent.

        Branches executed fewer than ``min_executions`` times are
        conservatively treated as input-dependent (too little evidence
        to call them always-easy).
        """
        stats = self._branches.get(pc)
        if stats is None or stats.executions < self.min_executions:
            return True
        return stats.phase_stddev >= self.stddev_threshold

    def is_always_easy(self, pc):
        """Low misprediction rate *and* phase-stable."""
        stats = self._branches.get(pc)
        if stats is None:
            return False
        return (
            stats.executions >= self.min_executions
            and stats.misprediction_rate < self.easy_rate
            and not self.is_input_dependent(pc)
        )

    def keep_branch(self, pc):
        """§8.3's selection rule: drop only always-easy branches."""
        return not self.is_always_easy(pc)

    def input_dependent_branches(self):
        return [pc for pc in self._branches if self.is_input_dependent(pc)]

    def always_easy_branches(self):
        return [pc for pc in self._branches if self.is_always_easy(pc)]


class TwoDProfiler:
    """Collects a :class:`TwoDProfile` in one emulator pass."""

    def __init__(self, predictor=None, num_slices=24):
        self.predictor = predictor if predictor is not None \
            else PerceptronPredictor()
        self.num_slices = num_slices

    def profile(self, program, memory=None, max_instructions=1_000_000):
        """Run ``program`` once and return its :class:`TwoDProfile`.

        The run is divided into ``num_slices`` equal dynamic-instruction
        slices; slice boundaries are detected with the emulator's
        branch callback (the instruction count advances monotonically
        with branch events, so per-branch slice attribution is exact to
        within one basic block).
        """
        self.predictor.reset()
        predictor = self.predictor
        # First pass cost avoidance: estimate run length with the
        # budget; slices sized optimistically and trimmed afterwards.
        slice_length = max(1, max_instructions // self.num_slices)

        # accumulating structures
        executions: Dict[int, int] = {}
        mispredictions: Dict[int, int] = {}
        slice_exec: Dict[int, List[int]] = {}
        slice_misp: Dict[int, List[int]] = {}
        branch_events = [0]

        def on_branch(pc, taken):
            branch_events[0] += 1
            predicted = predictor.predict(pc)
            predictor.update(pc, taken)
            missed = predicted != taken
            executions[pc] = executions.get(pc, 0) + 1
            if missed:
                mispredictions[pc] = mispredictions.get(pc, 0) + 1
            index = min(
                self.num_slices - 1,
                branch_events[0] * self._branches_per_slice_inv,
            )
            index = int(index)
            exec_slices = slice_exec.setdefault(
                pc, [0] * self.num_slices
            )
            misp_slices = slice_misp.setdefault(
                pc, [0] * self.num_slices
            )
            exec_slices[index] += 1
            if missed:
                misp_slices[index] += 1

        # Pre-pass: count branches cheaply to size slices by *branch
        # events* (uniform per-branch sampling beats instruction-count
        # slicing when region mixes vary).
        counter = [0]
        Emulator(program).run(
            state=ArchState(memory=dict(memory) if memory else None),
            max_instructions=max_instructions,
            on_branch=lambda pc, taken: counter.__setitem__(
                0, counter[0] + 1
            ),
        )
        total_branches = max(1, counter[0])
        self._branches_per_slice_inv = self.num_slices / (
            total_branches + 1
        )

        Emulator(program).run(
            state=ArchState(memory=dict(memory) if memory else None),
            max_instructions=max_instructions,
            on_branch=on_branch,
        )

        branches = {}
        for pc, execs in executions.items():
            rates = []
            for e, m in zip(slice_exec[pc], slice_misp[pc]):
                if e > 0:
                    rates.append(m / e)
            branches[pc] = BranchPhaseStats(
                pc=pc,
                executions=execs,
                mispredictions=mispredictions.get(pc, 0),
                slice_rates=rates,
            )
        return TwoDProfile(branches, slice_length)
