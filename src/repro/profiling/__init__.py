"""Profile collection (paper §3, §6.1).

The compiler algorithms are *profile-driven*: Alg-freq consumes edge
profiles, High-BP-5 and the short-hammock heuristic consume per-branch
misprediction rates, and the diverge-loop heuristics consume loop
iteration counts.  :class:`Profiler` produces all of them in one
emulator pass with a branch predictor in the loop.
"""

from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.loop_profile import LoopProfile
from repro.profiling.profiler import ProfileCollector, ProfileData, Profiler
from repro.profiling.two_d import TwoDProfile, TwoDProfiler

__all__ = [
    "EdgeProfile",
    "BranchProfile",
    "LoopProfile",
    "ProfileCollector",
    "ProfileData",
    "Profiler",
    "TwoDProfile",
    "TwoDProfiler",
]
