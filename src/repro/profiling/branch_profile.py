"""Per-branch misprediction profiles.

Collected by running a branch predictor inside the profiling pass, so
"misprediction rate" means exactly what it means at run time — the
quantity High-BP-5 (paper §7.2), the short-hammock heuristic (§3.4) and
the cost model's diagnostics are built on.
"""


class BranchProfile:
    """Execution and misprediction counts per conditional branch pc."""

    def __init__(self):
        self._executed = {}
        self._mispredicted = {}

    def record(self, pc, mispredicted):
        self._executed[pc] = self._executed.get(pc, 0) + 1
        if mispredicted:
            self._mispredicted[pc] = self._mispredicted.get(pc, 0) + 1

    def exec_count(self, pc):
        return self._executed.get(pc, 0)

    def misprediction_count(self, pc):
        return self._mispredicted.get(pc, 0)

    def misprediction_rate(self, pc):
        """Per-branch misprediction rate; 0.0 for never-executed branches."""
        executed = self._executed.get(pc, 0)
        if executed == 0:
            return 0.0
        return self._mispredicted.get(pc, 0) / executed

    def total_mispredictions(self):
        return sum(self._mispredicted.values())

    def total_executed(self):
        return sum(self._executed.values())

    def signature(self):
        """Canonical content tuple: ``(pc, executed, mispredicted)`` by pc."""
        return tuple(
            (pc, self._executed[pc], self._mispredicted.get(pc, 0))
            for pc in sorted(self._executed)
        )

    def remapped(self, pc_map):
        """Counts re-keyed through ``pc_map``; unmapped pcs are dropped."""
        other = BranchProfile()
        other._executed = {
            pc_map[pc]: count
            for pc, count in self._executed.items() if pc in pc_map
        }
        other._mispredicted = {
            pc_map[pc]: count
            for pc, count in self._mispredicted.items() if pc in pc_map
        }
        return other

    def branches_above_rate(self, rate):
        """Branch pcs whose misprediction rate exceeds ``rate``."""
        return sorted(
            pc
            for pc in self._executed
            if self.misprediction_rate(pc) > rate
        )
