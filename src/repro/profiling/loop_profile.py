"""Loop iteration profiles.

Tracks, per conditional branch, the lengths of consecutive
same-direction runs.  For a loop-exit branch the run length of the
"stay in loop" direction is (trip count − 1); the diverge-loop
heuristics (paper §5.2) query the average trip count through
:meth:`LoopProfile.average_iterations`.
"""


class _RunState:
    __slots__ = ("direction", "length", "sums", "counts")

    def __init__(self):
        self.direction = None
        self.length = 0
        # Completed-run statistics per direction: True/False -> totals.
        self.sums = {True: 0, False: 0}
        self.counts = {True: 0, False: 0}


class LoopProfile:
    """Consecutive same-direction run lengths per branch."""

    def __init__(self):
        self._states = {}

    def record(self, pc, taken):
        state = self._states.get(pc)
        if state is None:
            state = _RunState()
            self._states[pc] = state
        if state.direction is None:
            state.direction = taken
            state.length = 1
        elif state.direction == taken:
            state.length += 1
        else:
            state.sums[state.direction] += state.length
            state.counts[state.direction] += 1
            state.direction = taken
            state.length = 1

    def finish(self):
        """Flush trailing open runs (call once after profiling ends)."""
        for state in self._states.values():
            if state.direction is not None and state.length > 0:
                state.sums[state.direction] += state.length
                state.counts[state.direction] += 1
                state.direction = None
                state.length = 0

    def signature(self):
        """Canonical content tuple of completed-run statistics per pc."""
        return tuple(
            (
                pc,
                state.sums[True], state.counts[True],
                state.sums[False], state.counts[False],
            )
            for pc, state in sorted(self._states.items())
        )

    def remapped(self, pc_map):
        """Run statistics re-keyed through ``pc_map``; unmapped pcs drop.

        Only sealed profiles are remapped (transforms run after
        :meth:`finish`), so open runs need no carrying over.
        """
        other = LoopProfile()
        for pc, state in self._states.items():
            if pc not in pc_map:
                continue
            copied = _RunState()
            copied.direction = state.direction
            copied.length = state.length
            copied.sums = dict(state.sums)
            copied.counts = dict(state.counts)
            other._states[pc_map[pc]] = copied
        return other

    def average_run_length(self, pc, direction):
        """Mean length of completed ``direction`` runs at ``pc`` (0.0 if none)."""
        state = self._states.get(pc)
        if state is None or state.counts[direction] == 0:
            return 0.0
        return state.sums[direction] / state.counts[direction]

    def average_iterations(self, pc, loop_direction):
        """Average loop trip count for the exit branch at ``pc``.

        ``loop_direction`` is the branch direction that *continues* the
        loop.  A trip count of N shows up as a run of N-1 continue
        outcomes followed by one exit, so the average trip count is the
        average continue-run length + 1.  Loops that never exited
        during profiling report their observed run length + 1 as well
        (a lower bound).
        """
        return self.average_run_length(pc, loop_direction) + 1.0
