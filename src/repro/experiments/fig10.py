"""Figure 10: diverge-branch selection overlap across profiling inputs.

Diverge branches (All-best-heur) are classified into *only-run*
(selected only when profiling on the run-time/reduced input),
*only-train* (only when profiling on the train input) and
*either-run-train* (selected with both).  Fractions are weighted by
each branch's dynamic execution count on the run input, matching the
paper's "fraction of all dynamic diverge branches".  Shape to
reproduce: ≥ ~74% land in either-run-train everywhere.
"""

from repro.core import DivergeSelector, SelectionConfig
from repro.exec import Job, execute
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_BENCHMARKS, get_artifacts


def _bench_cell(name, scale):
    """Selection-overlap row for one benchmark (a parallel job)."""
    run_artifacts = get_artifacts(name, "reduced", scale)
    train_artifacts = get_artifacts(name, "train", scale)
    selected_run = {
        b.branch_pc
        for b in DivergeSelector(
            run_artifacts.program,
            run_artifacts.profile,
            SelectionConfig.all_best_heur(),
        ).select()
    }
    selected_train = {
        b.branch_pc
        for b in DivergeSelector(
            run_artifacts.program,
            train_artifacts.profile,
            SelectionConfig.all_best_heur(),
        ).select()
    }
    edge = run_artifacts.profile.edge_profile

    def weight(pcs):
        return sum(edge.exec_count(pc) for pc in pcs)

    only_run = weight(selected_run - selected_train)
    only_train = weight(selected_train - selected_run)
    either = weight(selected_run & selected_train)
    total = only_run + only_train + either
    total = total or 1
    return {
        "benchmark": name,
        "only_run": only_run / total,
        "only_train": only_train / total,
        "either": either / total,
        "num_run": len(selected_run),
        "num_train": len(selected_train),
    }


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    rows = execute(
        [Job(_bench_cell, name, scale, label=f"fig10:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    return {"rows": rows, "scale": scale, "benchmarks": list(benchmarks)}


def format_result(result):
    table_rows = [
        (
            r["benchmark"],
            f"{r['only_run'] * 100:.1f}%",
            f"{r['only_train'] * 100:.1f}%",
            f"{r['either'] * 100:.1f}%",
            r["num_run"],
            r["num_train"],
        )
        for r in result["rows"]
    ]
    return render_table(
        ["Benchmark", "Only-run", "Only-train", "Either-run-train",
         "#run", "#train"],
        table_rows,
        title=(
            "Figure 10. Diverge branches selected with different "
            "profiling input sets (dynamic-execution weighted)"
        ),
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
