"""Plain-text table rendering shared by the experiment harnesses."""


def render_table(headers, rows, title=None):
    """Render a list-of-lists as an aligned text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(value):
    """Format a speedup fraction as a percentage string."""
    return f"{value * 100:+.1f}%"
