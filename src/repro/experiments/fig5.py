"""Figure 5: DMP performance with different selection algorithms.

Left graph: the heuristic techniques added cumulatively (Alg-exact →
+Alg-freq → +short hammocks → +return CFMs → +diverge loops,
"All-best-heur").  Right graph: the cost-benefit model (cost-long,
cost-edge, then +short/+ret/+loop, "All-best-cost").  Values are IPC
improvements over the baseline processor per benchmark, plus the mean.
"""

from repro.exec import Job, execute
from repro.experiments.configs import COST_CONFIGS, CUMULATIVE_HEURISTICS
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    mean_speedup,
    run_baseline,
    run_selection,
)


def _series(side):
    series = []
    if side in ("left", "both"):
        series.extend(CUMULATIVE_HEURISTICS)
    if side in ("right", "both"):
        series.extend(COST_CONFIGS)
    return series


def _bench_cell(name, scale, side):
    """One benchmark's speedups for every series (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    cell = {}
    for label, config in _series(side):
        stats, _ = run_selection(name, config, scale=scale)
        cell[label] = stats.speedup_over(baseline)
    return cell


def run(scale=1.0, benchmarks=None, side="both", jobs=None):
    """``side`` selects "left" (heuristics), "right" (cost) or "both"."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    series = _series(side)
    cells = execute(
        [Job(_bench_cell, name, scale, side, label=f"fig5:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    results = {
        label: {name: cell[label]
                for name, cell in zip(benchmarks, cells)}
        for label, _ in series
    }

    means = {
        label: mean_speedup(per_bench.values())
        for label, per_bench in results.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": [label for label, _ in series],
        "speedups": results,
        "means": means,
        "scale": scale,
    }


def format_result(result):
    headers = ["Benchmark"] + result["series"]
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name]
            + [percent(result["speedups"][s][name]) for s in result["series"]]
        )
    rows.append(
        ["MEAN"] + [percent(result["means"][s]) for s in result["series"]]
    )
    return render_table(
        headers,
        rows,
        title=(
            "Figure 5. DMP performance improvement with different "
            "selection algorithms"
        ),
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
