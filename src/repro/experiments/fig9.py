"""Figure 9: DMP performance when profiling uses a different input set.

"same" profiles and runs on the reduced input set; "diff" profiles on
the train input set and runs on the reduced one (§7.3).  The paper's
finding: the improvement drops only ~0.5% on average — DMP is not
significantly sensitive to the profiling input set.
"""

from repro.core import SelectionConfig
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    mean_speedup,
    run_baseline,
    run_selection,
)

SERIES = (
    ("all-best-heur-same", SelectionConfig.all_best_heur(), "reduced"),
    ("all-best-heur-diff", SelectionConfig.all_best_heur(), "train"),
    ("all-best-cost-same", SelectionConfig.all_best_cost(), "reduced"),
    ("all-best-cost-diff", SelectionConfig.all_best_cost(), "train"),
)


def _bench_cell(name, scale):
    """One benchmark under every profiling input set (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    cell = {}
    for label, config, profile_set in SERIES:
        stats, _ = run_selection(
            name,
            config,
            scale=scale,
            input_set="reduced",
            profile_input_set=profile_set,
        )
        cell[label] = stats.speedup_over(baseline)
    return cell


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = execute(
        [Job(_bench_cell, name, scale, label=f"fig9:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    results = {
        label: {name: cell[label]
                for name, cell in zip(benchmarks, cells)}
        for label, _, _ in SERIES
    }
    means = {
        label: mean_speedup(per.values()) for label, per in results.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": [label for label, _, _ in SERIES],
        "speedups": results,
        "means": means,
        "scale": scale,
    }


def format_result(result):
    headers = ["Benchmark"] + result["series"]
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name]
            + [percent(result["speedups"][s][name]) for s in result["series"]]
        )
    rows.append(
        ["MEAN"] + [percent(result["means"][s]) for s in result["series"]]
    )
    same = result["means"]["all-best-heur-same"]
    diff = result["means"]["all-best-heur-diff"]
    return (
        render_table(
            headers,
            rows,
            title=(
                "Figure 9. DMP improvement with same vs different "
                "profiling input set"
            ),
        )
        + f"\nHeuristic same-vs-diff gap: {percent(same - diff)}"
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
