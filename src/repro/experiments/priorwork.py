"""Comparison against the prior dynamic-predication mechanisms.

The paper's §2/§8 position DMP as the generalization of two earlier
ideas; this experiment quantifies the progression on our suite:

- **dual-path** — selective dual-path execution (Heil & Smith): fork
  fetch on low confidence, never reconverge, benefit limited to a
  softened misprediction penalty;
- **dynamic-hammock** — dynamic hammock predication (Klauser et al.):
  predicate only *simple* hammocks chosen by size;
- **DMP (All-best-heur)** — the paper's full mechanism: nested and
  frequently-hammocks, short hammocks, return CFMs, and diverge loops.

Expected shape: dual-path < dynamic-hammock < DMP, with the gap from
dynamic-hammock to DMP dominated by frequently-hammocks — the paper's
core argument for compiler-identified CFM points.
"""

from repro.core import SelectionConfig
from repro.core.simple_algorithms import (
    select_dual_path,
    select_dynamic_hammock,
)
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    get_artifacts,
    mean_speedup,
    run_annotated,
    run_baseline,
    run_selection,
)

SERIES = ("dual-path", "dynamic-hammock", "dmp-all-best")


def _bench_cell(name, scale):
    """One benchmark under every prior mechanism (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    artifacts = get_artifacts(name, scale=scale)
    cell = {}
    for label, select in (
        ("dual-path", select_dual_path),
        ("dynamic-hammock", select_dynamic_hammock),
    ):
        annotation = select(artifacts.program, artifacts.profile)
        stats = run_annotated(
            name, annotation, scale=scale, label=f"{name}/{label}"
        )
        cell[label] = stats.speedup_over(baseline)
    stats, _ = run_selection(
        name, SelectionConfig.all_best_heur(), scale=scale
    )
    cell["dmp-all-best"] = stats.speedup_over(baseline)
    return cell


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = execute(
        [Job(_bench_cell, name, scale, label=f"priorwork:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    results = {
        label: {name: cell[label]
                for name, cell in zip(benchmarks, cells)}
        for label in SERIES
    }
    means = {
        label: mean_speedup(per.values()) for label, per in results.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": list(SERIES),
        "speedups": results,
        "means": means,
        "scale": scale,
    }


def format_result(result):
    headers = ["Benchmark"] + result["series"]
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name]
            + [percent(result["speedups"][s][name]) for s in result["series"]]
        )
    rows.append(
        ["MEAN"] + [percent(result["means"][s]) for s in result["series"]]
    )
    return render_table(
        headers,
        rows,
        title=(
            "Prior-work comparison: dual-path execution vs dynamic "
            "hammock predication vs DMP"
        ),
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
