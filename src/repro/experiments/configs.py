"""Named selection configurations used across the experiments.

The names follow the paper's figure legends: the cumulative heuristic
series of Figure 5 (left), the cost-model series of Figure 5 (right),
and the simple baselines of Figure 8.  Since the pass-manager refactor
the definitions live in :mod:`repro.compiler.registry`; this module
re-exposes them in figure order.
"""

from repro.compiler import registry
from repro.core.simple_algorithms import SIMPLE_ALGORITHMS

#: Figure 5 (left): each technique added cumulatively.
CUMULATIVE_HEURISTICS = tuple(
    (name, registry.resolve(name))
    for name in (
        "exact",
        "exact+freq",
        "exact+freq+short",
        "exact+freq+short+ret",
        "all-best-heur",
    )
)

#: Figure 5 (right): the cost-benefit model variants.
COST_CONFIGS = tuple(
    (name, registry.resolve(name))
    for name in (
        "cost-long",
        "cost-edge",
        "cost-edge+short",
        "cost-edge+short+ret",
        "all-best-cost",
    )
)


def named_config(name):
    """Look up a selection config by its figure-legend name."""
    return registry.resolve(name)


#: Figure 8's simple algorithms (name -> callable(program, profile)).
SIMPLE_BASELINES = SIMPLE_ALGORITHMS
