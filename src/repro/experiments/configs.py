"""Named selection configurations used across the experiments.

The names follow the paper's figure legends: the cumulative heuristic
series of Figure 5 (left), the cost-model series of Figure 5 (right),
and the simple baselines of Figure 8.
"""

from repro.core import SelectionConfig
from repro.core.simple_algorithms import SIMPLE_ALGORITHMS

#: Figure 5 (left): each technique added cumulatively.
CUMULATIVE_HEURISTICS = (
    ("exact", SelectionConfig(enable_freq=False, name="exact")),
    ("exact+freq", SelectionConfig(name="exact+freq")),
    (
        "exact+freq+short",
        SelectionConfig(enable_short=True, name="exact+freq+short"),
    ),
    (
        "exact+freq+short+ret",
        SelectionConfig(
            enable_short=True,
            enable_return_cfm=True,
            name="exact+freq+short+ret",
        ),
    ),
    ("all-best-heur", SelectionConfig.all_best_heur()),
)

#: Figure 5 (right): the cost-benefit model variants.
COST_CONFIGS = (
    ("cost-long", SelectionConfig(cost_model="long", name="cost-long")),
    ("cost-edge", SelectionConfig(cost_model="edge", name="cost-edge")),
    (
        "cost-edge+short",
        SelectionConfig(
            cost_model="edge", enable_short=True, name="cost-edge+short"
        ),
    ),
    (
        "cost-edge+short+ret",
        SelectionConfig(
            cost_model="edge",
            enable_short=True,
            enable_return_cfm=True,
            name="cost-edge+short+ret",
        ),
    ),
    ("all-best-cost", SelectionConfig.all_best_cost()),
)

_NAMED = dict(CUMULATIVE_HEURISTICS) | dict(COST_CONFIGS)


def named_config(name):
    """Look up a selection config by its figure-legend name."""
    try:
        return _NAMED[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; choose from {sorted(_NAMED)}"
        ) from None


#: Figure 8's simple algorithms (name -> callable(program, profile)).
SIMPLE_BASELINES = SIMPLE_ALGORITHMS
