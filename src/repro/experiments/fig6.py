"""Figure 6: pipeline flushes due to branch mispredictions.

Flushes per kilo-instruction in the baseline and in DMP as the
selection techniques are added cumulatively — the paper's evidence
that the selected diverge branches actually remove flushes.
"""

from repro.exec import Job, execute
from repro.experiments.configs import CUMULATIVE_HEURISTICS
from repro.experiments.report import render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    run_baseline,
    run_selection,
)


def _bench_cell(name, scale):
    """One benchmark's flush rates for every series (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    cell = {"baseline": baseline.flushes_per_kilo_inst}
    for label, config in CUMULATIVE_HEURISTICS:
        stats, _ = run_selection(name, config, scale=scale)
        cell[label] = stats.flushes_per_kilo_inst
    return cell


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    labels = ["baseline"] + [label for label, _ in CUMULATIVE_HEURISTICS]
    cells = execute(
        [Job(_bench_cell, name, scale, label=f"fig6:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    flushes = {
        label: {name: cell[label]
                for name, cell in zip(benchmarks, cells)}
        for label in labels
    }
    means = {
        label: sum(per.values()) / len(per) for label, per in flushes.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": labels,
        "flushes_per_ki": flushes,
        "means": means,
        "scale": scale,
    }


def format_result(result):
    headers = ["Benchmark"] + result["series"]
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name]
            + [
                f"{result['flushes_per_ki'][s][name]:.2f}"
                for s in result["series"]
            ]
        )
    rows.append(
        ["MEAN"] + [f"{result['means'][s]:.2f}" for s in result["series"]]
    )
    return render_table(
        headers,
        rows,
        title="Figure 6. Pipeline flushes per kilo-instruction",
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
