"""Misprediction-coverage report.

For one benchmark, shows exactly *which* mispredicted branches DMP
covers and which it leaves to flush — the per-branch view behind
Figure 6 and behind observations like "carefully selected branches
cover only 30% of gcc's mispredicted branches" (§7.2).

For each static branch (sorted by misprediction count): executions,
mispredictions, whether it is marked (and how), how many dpred
episodes it triggered, and what fraction of its mispredictions avoided
the flush.
"""

from repro.core import SelectionConfig
from repro.core.selector import DivergeSelector
from repro.exec import Job, execute
from repro.experiments.report import render_table
from repro.experiments.runner import get_artifacts
from repro.uarch import make_simulator


def run_many(benchmark_names, scale=1.0, config=None, top=15, jobs=None):
    """Coverage analysis for several benchmarks (one job each)."""
    return execute(
        [Job(run, name, scale, config, top, label=f"coverage:{name}")
         for name in benchmark_names],
        jobs=jobs,
    )


def run(benchmark_name, scale=1.0, config=None, top=15):
    """Coverage analysis of one benchmark under one selection config."""
    config = config or SelectionConfig.all_best_heur()
    artifacts = get_artifacts(benchmark_name, scale=scale)
    annotation = DivergeSelector(
        artifacts.program, artifacts.profile, config
    ).select()
    simulator = make_simulator(
        artifacts.program,
        annotation=annotation,
        collect_per_branch=True,
    )
    stats = simulator.run(artifacts.trace, label=f"{benchmark_name}/cov")

    rows = []
    ranked = sorted(
        stats.per_branch.items(),
        key=lambda item: -item[1]["mispredictions"],
    )
    total_misp = sum(c["mispredictions"] for _, c in ranked)
    covered = sum(c["flushes_avoided"] for _, c in ranked)
    for pc, counters in ranked[:top]:
        mark = annotation.get(pc)
        kind = mark.kind.value if mark else "-"
        if mark and mark.always_predicate:
            kind += "(always)"
        misp = counters["mispredictions"]
        rows.append(
            {
                "pc": pc,
                "instruction": artifacts.program[pc].format(),
                "executions": counters["executions"],
                "mispredictions": misp,
                "marked": kind,
                "episodes": counters["episodes"],
                "covered": counters["flushes_avoided"],
                "coverage": (
                    counters["flushes_avoided"] / misp if misp else 0.0
                ),
            }
        )
    return {
        "benchmark": benchmark_name,
        "rows": rows,
        "total_mispredictions": total_misp,
        "total_covered": covered,
        "coverage": covered / total_misp if total_misp else 0.0,
        "stats": stats,
        "annotation": annotation,
        "scale": scale,
    }


def format_result(result):
    table_rows = [
        (
            r["pc"],
            r["instruction"],
            r["executions"],
            r["mispredictions"],
            r["marked"],
            r["episodes"],
            r["covered"],
            f"{r['coverage'] * 100:.0f}%",
        )
        for r in result["rows"]
    ]
    table = render_table(
        ["pc", "instruction", "exec", "misp", "marked", "episodes",
         "covered", "coverage"],
        table_rows,
        title=(
            f"Misprediction coverage: {result['benchmark']} "
            f"(All-best-heur)"
        ),
    )
    return (
        table
        + f"\nTotal: {result['total_covered']} of "
        f"{result['total_mispredictions']} mispredictions covered "
        f"({result['coverage'] * 100:.0f}%)"
    )


def main():
    import sys

    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    print(format_result(run(name)))


if __name__ == "__main__":
    main()
