"""Static if-conversion vs dynamic predication (the §6 comparison).

The paper's §6 weighs DMP against *software* predication: a compiler
that if-converts hammocks outright instead of marking them for dynamic
predication.  This driver quantifies the three strategies on our suite:

- **static-meld** — the ``meld`` preset: profitable short hammocks are
  if-converted (branch removed, both sides executed, ``CMOV`` selects)
  and *no* dynamic predication runs;
- **dpred** — All-best-heur dynamic predication on the untouched
  program (the paper's mechanism);
- **meld+dpred** — the combined strategy: melding claims the short
  hammocks first, All-best-heur selection then runs on the *melded*
  program and dynamically predicates what remains.

Melded programs retire a different (longer) instruction stream for the
same architectural work, so two invariants are enforced per benchmark:
the melded run must halt and reach the *bit-identical* final
register/memory state of the original, and speedups are computed as
cycle ratios (not IPC ratios — see :func:`work_speedup`).

The decision-ledger attribution reports which hammocks each strategy
claimed: pcs melded by the static pass, pcs selected by dynamic
predication, and their overlap — the branches where the two approaches
directly compete.
"""

from repro.compiler import resolve, run_selection_pipeline
from repro.emulator import execute as emulate
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    KeyedCache,
    get_artifacts,
    mean_speedup,
    run_baseline,
    run_selection,
)
from repro.obs.ledger import SelectionLedger
from repro.uarch import make_simulator

SERIES = ("static-meld", "dpred", "meld+dpred")

#: Functional-execution budget multiplier for melded programs.  Melding
#: executes both hammock sides plus predicate/select overhead, so the
#: melded dynamic instruction count exceeds the original's; ×4 bounds
#: it with ample slack (observed expansion is well under 2×).
MELD_BUDGET_FACTOR = 4

#: (name, input_set, scale, melded fingerprint) -> functional trace.
#: The ``meld`` and ``meld+all-best-heur`` presets produce the same
#: rewritten program, so the second pipeline run reuses the trace.
_meld_trace_cache = KeyedCache("meld_trace", max_entries=32)
#: (name, input_set, scale) -> the original run's final ArchState.
_final_state_cache = KeyedCache("meld_final_state", max_entries=32)


def clear_meld_caches():
    """Drop the melded-trace/final-state caches (``clear_cache`` hook)."""
    _meld_trace_cache.clear()
    _final_state_cache.clear()


def work_speedup(stats, baseline):
    """Cycle-ratio speedup: same architectural work, fewer cycles.

    :meth:`~repro.uarch.stats.SimStats.speedup_over` compares IPC,
    which is only meaningful when both runs retire the same instruction
    stream.  A melded run retires *more* instructions for the same
    work, inflating its IPC; the cycle ratio is the honest metric (for
    same-trace runs the two definitions coincide).
    """
    if stats.cycles == 0:
        return 0.0
    return baseline.cycles / stats.cycles - 1.0


def _original_final_state(name, input_set, scale):
    """Final architectural state of the unmelded program (cached)."""
    key = (name, input_set, scale)
    cached = _final_state_cache.get(key)
    if cached is not None:
        return cached
    artifacts = get_artifacts(name, input_set=input_set, scale=scale)
    workload = artifacts.workload
    _, result = emulate(
        artifacts.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
        compact=True,
    )
    _final_state_cache.put(key, result.state)
    return result.state


def assert_equivalent(name, original, melded):
    """Melding must be architecturally invisible.

    The rewrite's contract (scratch registers cleared, ``CMOV``
    select, stores never melded) promises the final register file and
    memory image match the original bit for bit; any difference is a
    transform bug, reported loudly instead of skewing the comparison.
    """
    if original.regs != melded.regs:
        diverged = [
            index
            for index, (a, b) in enumerate(zip(original.regs, melded.regs))
            if a != b
        ]
        raise RuntimeError(
            f"melded {name!r} diverges from the original in "
            f"registers {diverged}"
        )
    if original.memory != melded.memory:
        keys = set(original.memory) | set(melded.memory)
        diverged = sorted(
            addr for addr in keys
            if original.memory.get(addr, 0) != melded.memory.get(addr, 0)
        )
        raise RuntimeError(
            f"melded {name!r} diverges from the original at memory "
            f"words {diverged[:8]}"
        )


def melded_run(name, config, input_set="reduced", scale=1.0, ledger=None):
    """Compile a meld config and functionally execute the result.

    Returns ``(state, program, trace)`` where ``program``/``trace``
    are the *melded* program and its functional trace (falling back to
    the originals when no hammock qualified).  The melded run is
    checked: it must halt within the widened budget and reach the
    original's exact final register/memory state.
    """
    artifacts = get_artifacts(name, input_set=input_set, scale=scale)
    state = run_selection_pipeline(
        artifacts.program, artifacts.profile, config, ledger=ledger
    )
    if state.transform is None:
        return state, artifacts.program, artifacts.trace
    program = state.transform.program
    workload = artifacts.workload
    key = (name, input_set, scale, program.fingerprint)
    trace = _meld_trace_cache.get(key)
    if trace is not None:
        return state, program, trace
    budget = workload.max_instructions * MELD_BUDGET_FACTOR
    trace, result = emulate(
        program,
        memory=workload.memory,
        max_instructions=budget,
        compact=True,
    )
    if not result.halted:
        raise RuntimeError(
            f"melded {name!r} did not halt within {budget} instructions"
        )
    assert_equivalent(
        name, _original_final_state(name, input_set, scale), result.state
    )
    _meld_trace_cache.put(key, trace)
    return state, program, trace


def _claims(meld_state, dpred_ledger, comb_state, comb_ledger):
    """Which hammocks each strategy claimed, in original pc space.

    The combined config's selection decisions are recorded in
    *melded* pc space (the annotation applies to the rewritten
    program); ``inverse_pc_map`` translates them back so all three
    columns compare in the original program's coordinates.
    """
    melded = sorted(
        meld_state.transform.melded if meld_state.transform else ()
    )
    dpred = dpred_ledger.selected_pcs()
    inverse = (
        comb_state.transform.inverse_pc_map()
        if comb_state.transform else {}
    )
    combined_melded = sorted(
        comb_state.transform.melded if comb_state.transform else ()
    )
    combined_dpred = sorted(
        inverse.get(pc, pc) for pc in comb_ledger.selected_pcs()
    )
    melded_set, dpred_set = set(melded), set(dpred)
    return {
        "melded": melded,
        "dpred": dpred,
        "contested": sorted(melded_set & dpred_set),
        "meld_only": sorted(melded_set - dpred_set),
        "dpred_only": sorted(dpred_set - melded_set),
        "combined_melded": combined_melded,
        "combined_dpred": combined_dpred,
    }


def _bench_cell(name, scale):
    """One benchmark under all three strategies (a parallel job)."""
    from repro.core import SelectionConfig

    baseline = run_baseline(name, scale=scale)

    dpred_ledger = SelectionLedger()
    dpred_stats, _ = run_selection(
        name, SelectionConfig.all_best_heur(), scale=scale,
        selection_ledger=dpred_ledger,
    )

    meld_state, meld_program, meld_trace = melded_run(
        name, resolve("meld"), scale=scale
    )
    meld_stats = make_simulator(meld_program).run(
        meld_trace, label=f"{name}/static-meld"
    )

    comb_ledger = SelectionLedger()
    comb_state, comb_program, comb_trace = melded_run(
        name, resolve("meld+all-best-heur"), scale=scale,
        ledger=comb_ledger,
    )
    comb_stats = make_simulator(
        comb_program, annotation=comb_state.annotation
    ).run(comb_trace, label=f"{name}/meld+dpred")

    return {
        "ipc": {
            "baseline": baseline.ipc,
            "static-meld": meld_stats.ipc,
            "dpred": dpred_stats.ipc,
            "meld+dpred": comb_stats.ipc,
        },
        "speedup": {
            "static-meld": work_speedup(meld_stats, baseline),
            "dpred": work_speedup(dpred_stats, baseline),
            "meld+dpred": work_speedup(comb_stats, baseline),
        },
        "claims": _claims(
            meld_state, dpred_ledger, comb_state, comb_ledger
        ),
    }


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = execute(
        [Job(_bench_cell, name, scale, label=f"meldcompare:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    ipc = {label: {} for label in ("baseline",) + SERIES}
    speedups = {label: {} for label in SERIES}
    claims = {}
    for name, cell in zip(benchmarks, cells):
        for label in ipc:
            ipc[label][name] = cell["ipc"][label]
        for label in SERIES:
            speedups[label][name] = cell["speedup"][label]
        claims[name] = cell["claims"]
    means = {
        label: mean_speedup(per.values())
        for label, per in speedups.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": list(SERIES),
        "ipc": ipc,
        "speedups": speedups,
        "means": means,
        "claims": claims,
        "scale": scale,
    }


def format_result(result):
    headers = (
        ["Benchmark", "base IPC"]
        + [f"{label} IPC" for label in result["series"]]
        + [f"{label} spd" for label in result["series"]]
    )
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name, result["ipc"]["baseline"][name]]
            + [result["ipc"][s][name] for s in result["series"]]
            + [percent(result["speedups"][s][name])
               for s in result["series"]]
        )
    rows.append(
        ["MEAN", "", "", "", ""]
        + [percent(result["means"][s]) for s in result["series"]]
    )
    table = render_table(
        headers,
        rows,
        title=(
            "§6 comparison: static if-conversion (meld) vs dynamic "
            "predication vs both"
        ),
    )
    lines = [table, "", "Hammock attribution (original pcs):"]
    for name in result["benchmarks"]:
        claim = result["claims"][name]
        lines.append(
            f"  {name}: melded={len(claim['melded'])} "
            f"dpred={len(claim['dpred'])} "
            f"contested={len(claim['contested'])} "
            f"(combined kept {len(claim['combined_dpred'])} dpred "
            f"branches after melding {len(claim['combined_melded'])})"
        )
    return "\n".join(lines)


def meld_cell(params):
    """Meld-aware campaign cell (``cell`` hook for :func:`campaign_spec`).

    The default :func:`repro.campaign.spec.run_cell` replays the
    *original* trace — wrong for program-rewriting selections, which
    :func:`~repro.experiments.runner.run_selection` therefore refuses.
    This cell compiles the transform, functionally re-executes the
    melded program (asserting architectural equivalence against the
    original), and simulates that trace.  Non-meld selections fall
    through to the default cell so a mixed selection axis compares
    like for like.
    """
    from repro.campaign.spec import build_selection, run_cell
    from repro.obs.explain import cell_ledger_summary
    from repro.obs.ledger import RuntimeLedger

    selection = build_selection(
        params["selection"], params.get("thresholds")
    )
    if selection.meld is None:
        return run_cell(params)
    if params.get("processor"):
        raise ValueError(
            "meld cells run the default processor only; drop the "
            "proc.* axes or the meld selection"
        )
    benchmark = params["benchmark"]
    input_set = params.get("input_set", "reduced")
    scale = params.get("scale", 1.0)
    baseline = run_baseline(benchmark, input_set=input_set, scale=scale)
    selection_ledger = SelectionLedger()
    runtime_ledger = RuntimeLedger()
    state, program, trace = melded_run(
        benchmark, selection, input_set=input_set, scale=scale,
        ledger=selection_ledger,
    )
    stats = make_simulator(
        program, annotation=state.annotation, ledger=runtime_ledger
    ).run(trace, label=f"{benchmark}/{selection.name}")
    melded = state.transform.melded if state.transform else ()
    return {
        "speedup": work_speedup(stats, baseline),
        "baseline": baseline.as_dict(),
        "stats": stats.as_dict(),
        "diverge_branches": len(state.annotation),
        "melded_branches": len(melded),
        "ledger": cell_ledger_summary(
            selection_ledger, runtime_ledger, selection.cost_params
        ),
    }


def _prepare_meld_cell(params):
    from repro.campaign.spec import prepare_cell

    prepare_cell(params)


meld_cell.prepare = _prepare_meld_cell


def campaign_spec(scale=1.0, benchmarks=None):
    """The §6 comparison as a durable campaign (``campaign run meld``).

    A ``selection`` axis sweeps the three strategies per benchmark;
    the meld-aware cell simulates rewriting selections against the
    melded trace and plain ones through the default pipeline, so the
    campaign report's per-cell speedups match :func:`run`.
    """
    from repro.campaign import Axis, CampaignSpec

    return CampaignSpec(
        name="meld",
        benchmarks=tuple(benchmarks or DEFAULT_BENCHMARKS),
        scale=scale,
        selection="all-best-heur",
        axes=(
            Axis("selection",
                 ("meld", "all-best-heur", "meld+all-best-heur")),
        ),
        cell="repro.experiments.meldcompare:meld_cell",
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
