"""Table 2: benchmark characteristics.

Per benchmark: baseline IPC, branch MPKI, retired instructions, static
conditional branch count, number of diverge branches selected by
All-best-heur, and the average number of CFM points per diverge branch
— the same columns as the paper's Table 2.
"""

from repro.core import SelectionConfig
from repro.exec import Job, execute
from repro.experiments.report import render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    get_artifacts,
    run_baseline,
    run_selection,
)


def _bench_cell(name, scale):
    """Characteristics row for one benchmark (a parallel job)."""
    artifacts = get_artifacts(name, scale=scale)
    baseline = run_baseline(name, scale=scale)
    _, annotation = run_selection(
        name, SelectionConfig.all_best_heur(), scale=scale
    )
    return {
        "benchmark": name,
        "base_ipc": baseline.ipc,
        "mpki": baseline.mpki,
        "insts": baseline.retired_instructions,
        "static_branches": len(
            artifacts.program.conditional_branch_pcs()
        ),
        "diverge_branches": len(annotation),
        "avg_cfm": annotation.average_cfm_points,
    }


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    rows = execute(
        [Job(_bench_cell, name, scale, label=f"table2:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    return {"rows": rows, "scale": scale}


def format_result(result):
    table_rows = [
        (
            r["benchmark"],
            f"{r['base_ipc']:.2f}",
            f"{r['mpki']:.1f}",
            f"{r['insts']:,}",
            r["static_branches"],
            r["diverge_branches"],
            f"{r['avg_cfm']:.2f}",
        )
        for r in result["rows"]
    ]
    return render_table(
        ["Benchmark", "Base IPC", "MPKI", "Insts", "All br.",
         "Diverge br.", "Avg #CFM"],
        table_rows,
        title="Table 2. Benchmark characteristics",
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
