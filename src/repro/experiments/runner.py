"""Shared benchmark running and caching for the experiment harnesses.

The expensive artifacts — functional traces and profiles — are cached
per (benchmark, input set, scale), so running several figures in one
process (e.g. the benchmark suite) profiles each workload once.
"""

import math
from dataclasses import dataclass

from repro.core import DivergeSelector
from repro.emulator import execute
from repro.profiling import Profiler
from repro.uarch import TimingSimulator
from repro.workloads import BENCHMARK_NAMES, load_benchmark

#: Default benchmark list: the paper's 12 SPEC2000 + 5 SPEC95 programs.
DEFAULT_BENCHMARKS = BENCHMARK_NAMES


@dataclass
class Artifacts:
    """Everything one (benchmark, input set) needs for experiments."""

    workload: object
    trace: list
    profile: object

    @property
    def program(self):
        return self.workload.program


_artifact_cache = {}
_baseline_cache = {}


def clear_cache():
    """Drop all cached traces/profiles/baselines (frees memory)."""
    _artifact_cache.clear()
    _baseline_cache.clear()


def get_artifacts(name, input_set="reduced", scale=1.0):
    """Load, execute, and profile one benchmark (cached)."""
    key = (name, input_set, scale)
    cached = _artifact_cache.get(key)
    if cached is not None:
        return cached
    workload = load_benchmark(name, input_set=input_set, scale=scale)
    trace, result = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    if not result.halted:
        raise RuntimeError(
            f"benchmark {name!r} did not halt within its budget"
        )
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    artifacts = Artifacts(workload=workload, trace=trace, profile=profile)
    _artifact_cache[key] = artifacts
    return artifacts


def run_baseline(name, input_set="reduced", scale=1.0, config=None):
    """Simulate the baseline (no DMP) processor on one benchmark (cached)."""
    key = (name, input_set, scale, id(config) if config else None)
    cached = _baseline_cache.get(key)
    if cached is not None:
        return cached
    artifacts = get_artifacts(name, input_set, scale)
    simulator = TimingSimulator(artifacts.program, config=config)
    stats = simulator.run(artifacts.trace, label=f"{name}/baseline")
    _baseline_cache[key] = stats
    return stats


def run_annotated(name, annotation, input_set="reduced", scale=1.0,
                  config=None, label=""):
    """Simulate DMP with a prepared annotation on one benchmark."""
    artifacts = get_artifacts(name, input_set, scale)
    simulator = TimingSimulator(
        artifacts.program, config=config, annotation=annotation
    )
    return simulator.run(
        artifacts.trace, label=label or f"{name}/dmp"
    )


def run_selection(name, selection_config, input_set="reduced",
                  profile_input_set=None, scale=1.0, config=None):
    """Profile → select → simulate for one benchmark.

    ``profile_input_set`` lets the §7.3 experiments profile on one input
    set while running on another; it defaults to the run input set.
    Returns ``(stats, annotation)``.
    """
    profile_set = profile_input_set or input_set
    run_artifacts = get_artifacts(name, input_set, scale)
    profile_artifacts = get_artifacts(name, profile_set, scale)
    selector = DivergeSelector(
        run_artifacts.program, profile_artifacts.profile, selection_config
    )
    annotation = selector.select()
    stats = run_annotated(
        name,
        annotation,
        input_set=input_set,
        scale=scale,
        config=config,
        label=f"{name}/{selection_config.name}",
    )
    return stats, annotation


def mean_speedup(speedups):
    """Arithmetic mean of per-benchmark speedups (paper-style average)."""
    values = list(speedups)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean_speedup(speedups):
    """Geometric mean over speedup *factors* (reported for reference)."""
    values = list(speedups)
    if not values:
        return 0.0
    log_sum = sum(math.log(1.0 + s) for s in values)
    return math.exp(log_sum / len(values)) - 1.0
