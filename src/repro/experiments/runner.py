"""Shared benchmark running and caching for the experiment harnesses.

The expensive artifacts — functional traces and profiles — are built
in a *single* emulator pass per (benchmark, input set, scale): the
profiler observes the traced run through the emulator's ``on_branch``
hook instead of re-executing the workload.  Artifacts are cached at
two levels: a bounded in-memory LRU (:class:`KeyedCache`) within the
process, and the persistent content-addressed disk cache
(:mod:`repro.exec.artifact_cache`) across processes and invocations.
All hit/miss counters land in the metrics registry, so cache
effectiveness is visible in ``--metrics`` output instead of silently
growing memory.

Every stage runs under a phase timer (:func:`repro.obs.phase`):
``trace`` (the fused functional execution + profiling pass),
``profile`` (sealing the collected profiles), ``select``
(diverge-branch selection), and ``simulate`` (timing model), each
reporting wall-clock seconds and events/sec through the active
telemetry context.
"""

import math
from collections import OrderedDict
from dataclasses import astuple, dataclass, is_dataclass

from repro.core import DivergeSelector
from repro.emulator import execute
from repro.exec import artifact_cache
from repro.obs.context import get_metrics
from repro.obs.timers import phase
from repro.profiling import Profiler
from repro.uarch import make_simulator
from repro.workloads import BENCHMARK_NAMES, load_benchmark

#: Default benchmark list: the paper's 12 SPEC2000 + 5 SPEC95 programs.
DEFAULT_BENCHMARKS = BENCHMARK_NAMES


@dataclass
class Artifacts:
    """Everything one (benchmark, input set) needs for experiments."""

    workload: object
    trace: list
    profile: object

    @property
    def program(self):
        return self.workload.program


class KeyedCache:
    """A small bounded LRU cache with hit/miss/eviction metrics.

    Counter names are ``cache_<name>_{hits,misses,evictions}_total`` in
    the *active* metrics registry (looked up per operation, so a CLI
    run with a fresh registry sees its own numbers).  ``max_entries``
    bounds memory: the artifact caches used to be module-global dicts
    that grew without limit across a long suite run.
    """

    def __init__(self, name, max_entries=32):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self._data = OrderedDict()

    def get(self, key):
        """The cached value (marking it most-recent) or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            get_metrics().counter(
                f"cache_{self.name}_misses_total"
            ).inc()
            return None
        self._data.move_to_end(key)
        get_metrics().counter(f"cache_{self.name}_hits_total").inc()
        return value

    def put(self, key, value):
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            get_metrics().counter(
                f"cache_{self.name}_evictions_total"
            ).inc()

    def clear(self):
        self._data.clear()

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data


#: (name, input_set, scale) -> :class:`Artifacts`.  17 benchmarks × a
#: couple of input sets fit comfortably; real suites at several scales
#: recycle the oldest entries instead of accumulating them.
_artifact_cache = KeyedCache("artifacts", max_entries=64)
_baseline_cache = KeyedCache("baseline", max_entries=128)


def clear_cache():
    """Drop all cached traces/profiles/baselines/analyses (frees memory)."""
    from repro.compiler.analysis_manager import reset_shared_manager
    from repro.experiments import meldcompare

    _artifact_cache.clear()
    _baseline_cache.clear()
    meldcompare.clear_meld_caches()
    reset_shared_manager()


def get_artifacts(name, input_set="reduced", scale=1.0):
    """Load, execute, and profile one benchmark (cached, single pass).

    The functional trace and the profile come out of *one* emulator
    run: the profiler's :class:`~repro.profiling.ProfileCollector`
    rides along on the ``on_branch`` hook of the traced execution.  On
    a disk-cache hit no emulation happens at all (the workload is
    still loaded — the simulator needs the program).
    """
    key = (name, input_set, scale)
    cached = _artifact_cache.get(key)
    if cached is not None:
        return cached
    workload = load_benchmark(name, input_set=input_set, scale=scale)
    profiler = Profiler()
    disk_key = artifact_cache.artifact_key(workload, profiler.fingerprint())
    entry = artifact_cache.load(disk_key)
    if entry is not None:
        trace, profile = entry
        artifacts = Artifacts(
            workload=workload, trace=trace, profile=profile
        )
        _artifact_cache.put(key, artifacts)
        return artifacts
    collector = profiler.collector()
    with phase("trace") as ph:
        trace, result = execute(
            workload.program,
            memory=workload.memory,
            max_instructions=workload.max_instructions,
            on_branch=collector.on_branch,
            compact=True,
        )
        ph.events = result.instruction_count
    if not result.halted:
        raise RuntimeError(
            f"benchmark {name!r} did not halt within its budget"
        )
    with phase("profile") as ph:
        profile = collector.finish(result)
        ph.events = result.instruction_count
    artifact_cache.store(disk_key, trace, profile)
    artifacts = Artifacts(workload=workload, trace=trace, profile=profile)
    _artifact_cache.put(key, artifacts)
    return artifacts


def _config_key(config):
    """A value-based cache key for a processor config.

    ``id(config)`` is unusable as a key: two equal configs built at
    different call sites would miss, and worse, a recycled id could
    alias two *different* configs to the same entry.
    """
    if config is None:
        return None
    if is_dataclass(config):
        return (type(config).__name__,) + astuple(config)
    return config


def run_baseline(name, input_set="reduced", scale=1.0, config=None):
    """Simulate the baseline (no DMP) processor on one benchmark (cached)."""
    key = (name, input_set, scale, _config_key(config))
    cached = _baseline_cache.get(key)
    if cached is not None:
        return cached
    artifacts = get_artifacts(name, input_set, scale)
    simulator = make_simulator(artifacts.program, config=config)
    with phase("simulate") as ph:
        stats = simulator.run(artifacts.trace, label=f"{name}/baseline")
        ph.events = stats.retired_instructions
    _baseline_cache.put(key, stats)
    return stats


def run_annotated(name, annotation, input_set="reduced", scale=1.0,
                  config=None, label="", ledger=None, profiler=None):
    """Simulate DMP with a prepared annotation on one benchmark.

    ``ledger`` is an optional
    :class:`~repro.obs.ledger.RuntimeLedger` receiving the run's
    per-branch episode outcome counters; ``profiler`` an optional
    :class:`~repro.uarch.SimProfiler` receiving per-component
    simulator cost buckets.
    """
    artifacts = get_artifacts(name, input_set, scale)
    simulator = make_simulator(
        artifacts.program, config=config, annotation=annotation,
        ledger=ledger, profiler=profiler,
    )
    with phase("simulate") as ph:
        stats = simulator.run(
            artifacts.trace, label=label or f"{name}/dmp"
        )
        ph.events = stats.retired_instructions
    return stats


def run_selection(name, selection_config, input_set="reduced",
                  profile_input_set=None, scale=1.0, config=None,
                  selection_ledger=None, runtime_ledger=None,
                  profiler=None):
    """Profile → select → simulate for one benchmark.

    ``profile_input_set`` lets the §7.3 experiments profile on one input
    set while running on another; it defaults to the run input set.
    ``selection_ledger`` / ``runtime_ledger`` are the optional decision
    ledgers (:mod:`repro.obs.ledger`) recording compile-time verdicts
    and runtime outcomes for ``explain``.  Returns
    ``(stats, annotation)``.
    """
    if getattr(selection_config, "meld", None) is not None:
        raise ValueError(
            f"config {selection_config.name!r} rewrites the program "
            f"(meld={selection_config.meld!r}); its annotation does "
            f"not apply to the original trace — use "
            f"repro.experiments.meldcompare instead"
        )
    profile_set = profile_input_set or input_set
    run_artifacts = get_artifacts(name, input_set, scale)
    profile_artifacts = get_artifacts(name, profile_set, scale)
    selector = DivergeSelector(
        run_artifacts.program, profile_artifacts.profile,
        selection_config, ledger=selection_ledger,
    )
    with phase("select") as ph:
        annotation = selector.select()
        ph.events = len(annotation)
    stats = run_annotated(
        name,
        annotation,
        input_set=input_set,
        scale=scale,
        config=config,
        label=f"{name}/{selection_config.name}",
        ledger=runtime_ledger,
        profiler=profiler,
    )
    return stats, annotation


def mean_speedup(speedups):
    """Arithmetic mean of per-benchmark speedups (paper-style average)."""
    values = list(speedups)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean_speedup(speedups):
    """Geometric mean over speedup *factors* (reported for reference)."""
    values = list(speedups)
    if not values:
        return 0.0
    log_sum = sum(math.log(1.0 + s) for s in values)
    return math.exp(log_sum / len(values)) - 1.0
