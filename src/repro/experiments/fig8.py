"""Figure 8: comparison with simple diverge-branch selection algorithms.

Every-br, Random-50, High-BP-5, Immediate and If-else against
All-best-heur.  The shape to reproduce: the simple algorithms cluster
around a small improvement (the paper: 4.3–4.5% for the best three)
while the proposed algorithms reach ~20%, with the simple ones doing
comparatively well only on the simple-hammock-dominated benchmarks
(eon, perlbmk, li).
"""

from repro.core import SelectionConfig
from repro.core.simple_algorithms import SIMPLE_ALGORITHMS
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    get_artifacts,
    mean_speedup,
    run_annotated,
    run_baseline,
    run_selection,
)

ALGORITHM_ORDER = (
    "every-br",
    "random-50",
    "high-bp-5",
    "immediate",
    "if-else",
    "all-best-heur",
)


def _bench_cell(name, scale):
    """One benchmark under every algorithm (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    artifacts = get_artifacts(name, scale=scale)
    cell = {}
    for label, select in SIMPLE_ALGORITHMS.items():
        annotation = select(artifacts.program, artifacts.profile)
        stats = run_annotated(
            name, annotation, scale=scale, label=f"{name}/{label}"
        )
        cell[label] = stats.speedup_over(baseline)
    stats, _ = run_selection(
        name, SelectionConfig.all_best_heur(), scale=scale
    )
    cell["all-best-heur"] = stats.speedup_over(baseline)
    return cell


def run(scale=1.0, benchmarks=None, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = execute(
        [Job(_bench_cell, name, scale, label=f"fig8:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    results = {
        label: {name: cell[label]
                for name, cell in zip(benchmarks, cells)}
        for label in ALGORITHM_ORDER
    }
    means = {
        label: mean_speedup(per.values()) for label, per in results.items()
    }
    return {
        "benchmarks": list(benchmarks),
        "series": list(ALGORITHM_ORDER),
        "speedups": results,
        "means": means,
        "scale": scale,
    }


def format_result(result):
    headers = ["Benchmark"] + result["series"]
    rows = []
    for name in result["benchmarks"]:
        rows.append(
            [name]
            + [percent(result["speedups"][s][name]) for s in result["series"]]
        )
    rows.append(
        ["MEAN"] + [percent(result["means"][s]) for s in result["series"]]
    )
    return render_table(
        headers,
        rows,
        title=(
            "Figure 8. DMP improvement with alternative simple "
            "selection algorithms"
        ),
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
