"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run(scale=..., benchmarks=...)`` returning a
plain-dict result and ``format_result`` rendering the same rows/series
the paper reports.  ``scale`` multiplies the benchmarks' dynamic trace
length (1.0 ≈ 60k instructions per benchmark).

Index (see DESIGN.md §4 and EXPERIMENTS.md):

- :mod:`repro.experiments.table1` — machine configuration.
- :mod:`repro.experiments.table2` — benchmark characteristics.
- :mod:`repro.experiments.fig5` — selection algorithms (heuristics and
  cost-benefit model).
- :mod:`repro.experiments.fig6` — pipeline flushes.
- :mod:`repro.experiments.fig7` — MAX_INSTR × MIN_MERGE_PROB sweep.
- :mod:`repro.experiments.fig8` — simple selection baselines.
- :mod:`repro.experiments.fig9` — input-set sensitivity (performance).
- :mod:`repro.experiments.fig10` — input-set sensitivity (selection
  overlap).
- :mod:`repro.experiments.meldcompare` — §6 static if-conversion
  (melding) vs dynamic predication vs the combined strategy.
"""

from repro.experiments.runner import (
    Artifacts,
    clear_cache,
    geometric_mean_speedup,
    get_artifacts,
    mean_speedup,
    run_annotated,
    run_baseline,
    run_selection,
)
from repro.experiments.configs import CUMULATIVE_HEURISTICS, COST_CONFIGS, named_config

__all__ = [
    "Artifacts",
    "clear_cache",
    "get_artifacts",
    "run_annotated",
    "run_baseline",
    "run_selection",
    "mean_speedup",
    "geometric_mean_speedup",
    "CUMULATIVE_HEURISTICS",
    "COST_CONFIGS",
    "named_config",
]
