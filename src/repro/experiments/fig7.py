"""Figure 7: MAX_INSTR × MIN_MERGE_PROB threshold sweep.

Average DMP improvement with only Alg-exact + Alg-freq while sweeping
the two main selection thresholds.  The paper's findings to reproduce:
the best average point is MAX_INSTR = 50 with a small MIN_MERGE_PROB;
very small MAX_INSTR (10) forfeits coverage, very large (200) admits
window-filling hammocks; and high merge-probability candidates carry
most of the benefit.
"""

from repro.core import SelectionConfig, SelectionThresholds
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    mean_speedup,
    run_baseline,
    run_selection,
)

#: The paper's sweep values (Figure 7 x-axis groups and series).
MAX_INSTR_VALUES = (10, 50, 100, 200)
MIN_MERGE_PROB_VALUES = (0.01, 0.05, 0.30, 0.60, 0.90)


def _grid_configs(max_instr_values, min_merge_prob_values):
    for max_instr in max_instr_values:
        for min_merge in min_merge_prob_values:
            thresholds = SelectionThresholds().with_overrides(
                max_instr=max_instr, min_merge_prob=min_merge
            )
            yield (max_instr, min_merge), SelectionConfig(
                thresholds=thresholds,
                name=f"mi{max_instr}-mm{int(min_merge * 100)}",
            )


def _bench_cell(name, scale, max_instr_values, min_merge_prob_values):
    """One benchmark's speedup at every grid point (a parallel job)."""
    baseline = run_baseline(name, scale=scale)
    cell = {}
    for point, config in _grid_configs(
        max_instr_values, min_merge_prob_values
    ):
        stats, _ = run_selection(name, config, scale=scale)
        cell[point] = stats.speedup_over(baseline)
    return cell


def campaign_spec(scale=1.0, benchmarks=None,
                  max_instr_values=MAX_INSTR_VALUES,
                  min_merge_prob_values=MIN_MERGE_PROB_VALUES):
    """This figure as a durable campaign (``campaign run fig7``).

    The campaign's two-axis sensitivity view renders the same grid as
    :func:`run`: identical per-cell speedups, identical benchmark-order
    means — but journaled, resumable, and fault-tolerant.
    """
    from repro.campaign import Axis, CampaignSpec

    return CampaignSpec(
        name="fig7",
        benchmarks=tuple(benchmarks or DEFAULT_BENCHMARKS),
        scale=scale,
        selection="exact-freq",
        axes=(
            Axis("max_instr", tuple(max_instr_values)),
            Axis("min_merge_prob", tuple(min_merge_prob_values)),
        ),
    )


def run(scale=1.0, benchmarks=None, max_instr_values=MAX_INSTR_VALUES,
        min_merge_prob_values=MIN_MERGE_PROB_VALUES, jobs=None):
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    cells = execute(
        [Job(_bench_cell, name, scale, tuple(max_instr_values),
             tuple(min_merge_prob_values), label=f"fig7:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    # Means are taken in benchmark order, exactly like the serial loop.
    grid = {
        point: mean_speedup(cell[point] for cell in cells)
        for point, _ in _grid_configs(
            max_instr_values, min_merge_prob_values
        )
    }
    best = max(grid, key=grid.get)
    return {
        "grid": grid,
        "max_instr_values": list(max_instr_values),
        "min_merge_prob_values": list(min_merge_prob_values),
        "best": best,
        "scale": scale,
        "benchmarks": list(benchmarks),
    }


def format_result(result):
    headers = ["MAX_INSTR \\ MIN_MERGE"] + [
        f"{int(p * 100)}%" for p in result["min_merge_prob_values"]
    ]
    rows = []
    for max_instr in result["max_instr_values"]:
        rows.append(
            [str(max_instr)]
            + [
                percent(result["grid"][(max_instr, p)])
                for p in result["min_merge_prob_values"]
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Figure 7. Mean DMP improvement vs MAX_INSTR and "
            "MIN_MERGE_PROB (Alg-exact + Alg-freq only)"
        ),
    )
    best_mi, best_mm = result["best"]
    return (
        table
        + f"\nBest point: MAX_INSTR={best_mi}, "
        f"MIN_MERGE_PROB={int(best_mm * 100)}% "
        f"({percent(result['grid'][result['best']])})"
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
