"""ASCII bar charts for the figure harnesses.

The paper presents Figures 5-10 as bar charts; ``python -m repro fig5
--chart`` renders the same data as horizontal text bars, which reads
better than a table when eyeballing shapes in a terminal.
"""


def horizontal_bars(items, width=46, fmt="{:+.1%}", title=None):
    """Render ``(label, value)`` pairs as horizontal bars.

    Negative values extend left of the axis; the scale is chosen from
    the largest magnitude.
    """
    items = list(items)
    if not items:
        return title or ""
    label_width = max(len(str(label)) for label, _ in items)
    largest = max(abs(value) for _, value in items) or 1.0
    # split the width between negative and positive lobes
    has_negative = any(value < 0 for _, value in items)
    neg_width = width // 3 if has_negative else 0
    pos_width = width - neg_width
    lines = [title] if title else []
    for label, value in items:
        if value >= 0:
            filled = int(round(value / largest * pos_width))
            bar = " " * neg_width + "|" + "#" * filled
        else:
            filled = int(round(-value / largest * neg_width))
            bar = " " * (neg_width - filled) + "#" * filled + "|"
        lines.append(
            f"{str(label).ljust(label_width)}  "
            f"{fmt.format(value).rjust(7)}  {bar}"
        )
    return "\n".join(lines)


def grouped_series_chart(benchmarks, series, values, fmt="{:+.1%}",
                         title=None):
    """One bar block per benchmark, one bar per series.

    ``values[series][benchmark]`` → value, matching the figure-harness
    result dictionaries.
    """
    blocks = [title] if title else []
    for name in benchmarks:
        items = [(s, values[s][name]) for s in series]
        blocks.append(horizontal_bars(items, title=f"-- {name} --",
                                      fmt=fmt))
    return "\n".join(blocks)


def chart_speedup_result(result, title):
    """Chart a fig5/fig8/fig9-shaped result (speedups + means)."""
    mean_items = [
        (series, result["means"][series]) for series in result["series"]
    ]
    return horizontal_bars(
        mean_items, title=f"{title} (suite means)"
    )


def chart_flush_result(result, title):
    """Chart a fig6-shaped result (flushes per kilo-instruction)."""
    mean_items = [
        (series, result["means"][series]) for series in result["series"]
    ]
    return horizontal_bars(
        mean_items, fmt="{:.2f}", title=f"{title} (flushes/ki, means)"
    )
