"""Ablations of DESIGN.md's design choices (beyond the paper's figures).

Four studies:

- ``acc_conf``: cost-model sensitivity to the assumed Acc_Conf
  (footnote 5 of the paper: performance should be stable over 20-50%).
- ``max_cfm``: how many CFM points per diverge branch are needed
  (§3.3: the paper found 3 is enough; Table 2 shows ~1 used on
  average).
- ``confidence_threshold``: the runtime JRS gate — a low threshold
  predicates rarely (missed coverage), 14-15 covers most
  mispredictions.
- ``easy_branch_filter``: the §8.3 future-work extension — excluding
  always-easy branches from selection; it should cost little or help
  (notably where the fixed Acc_Conf=40% assumption over-predicates
  predictable codes).
"""

from repro.core import SelectionConfig
from repro.core.cost_model import CostModelParams
from repro.core.thresholds import SelectionThresholds
from repro.exec import Job, execute
from repro.experiments.report import percent, render_table
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    mean_speedup,
    run_baseline,
    run_selection,
)
from repro.uarch import ProcessorConfig


def _bench_cell(name, scale, configs, processor_configs):
    """One benchmark's speedup per sweep config (a parallel job)."""
    speedups = []
    for i, (_, config) in enumerate(configs):
        processor = (
            processor_configs[i] if processor_configs else None
        )
        baseline = run_baseline(name, scale=scale, config=processor)
        stats, _ = run_selection(
            name, config, scale=scale, config=processor
        )
        speedups.append(stats.speedup_over(baseline))
    return speedups


def _sweep(configs, scale, benchmarks, processor_configs=None, jobs=None):
    """Mean speedup for each (label, SelectionConfig) pair."""
    configs = list(configs)
    cells = execute(
        [Job(_bench_cell, name, scale, configs, processor_configs,
             label=f"ablation:{name}")
         for name in benchmarks],
        jobs=jobs,
    )
    # Per config, the mean runs over benchmarks in benchmark order —
    # the same float summation order as the serial sweep.
    return {
        label: mean_speedup(cell[i] for cell in cells)
        for i, (label, _) in enumerate(configs)
    }


def run_acc_conf(scale=1.0, benchmarks=None,
                 values=(0.15, 0.20, 0.30, 0.40, 0.50), jobs=None):
    """Cost-model Acc_Conf sweep (paper footnote 5)."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = [
        (
            f"acc={value:.2f}",
            SelectionConfig(
                cost_model="edge",
                cost_params=CostModelParams(acc_conf=value),
                name=f"cost-acc{int(value * 100)}",
            ),
        )
        for value in values
    ]
    means = _sweep(configs, scale, benchmarks, jobs=jobs)
    return {"means": means, "kind": "acc_conf", "scale": scale}


def run_max_cfm(scale=1.0, benchmarks=None, values=(1, 2, 3), jobs=None):
    """MAX_CFM ablation (§3.3 / Table 1's 3 CFM registers)."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = [
        (
            f"max_cfm={value}",
            SelectionConfig(
                thresholds=SelectionThresholds().with_overrides(
                    max_cfm=value
                ),
                enable_short=True,
                enable_return_cfm=True,
                enable_loop=True,
                name=f"maxcfm{value}",
            ),
        )
        for value in values
    ]
    means = _sweep(configs, scale, benchmarks, jobs=jobs)
    return {"means": means, "kind": "max_cfm", "scale": scale}


def run_confidence_threshold(scale=1.0, benchmarks=None,
                             values=(6, 10, 14, 15), jobs=None):
    """Runtime JRS threshold sweep (Table 1 uses 14)."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    selection = SelectionConfig.all_best_heur()
    configs = [(f"threshold={v}", selection) for v in values]
    processors = [
        ProcessorConfig(confidence_threshold=v) for v in values
    ]
    means = _sweep(configs, scale, benchmarks,
                   processor_configs=processors, jobs=jobs)
    return {"means": means, "kind": "confidence_threshold", "scale": scale}


def run_per_app_acc_conf(scale=1.0, benchmarks=None, jobs=None):
    """§4.1's per-application Acc_Conf vs the fixed 40% assumption."""
    from dataclasses import replace

    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    fixed = SelectionConfig.all_best_cost()
    configs = [
        ("acc_conf=fixed-40%", fixed),
        ("acc_conf=measured",
         replace(fixed, per_app_acc_conf=True,
                 name="all-best-cost-perapp")),
    ]
    means = _sweep(configs, scale, benchmarks, jobs=jobs)
    return {"means": means, "kind": "per_app_acc_conf", "scale": scale}


def run_predictor_sensitivity(scale=1.0, benchmarks=None,
                              kinds=("bimodal", "gshare", "tournament",
                                     "perceptron"), jobs=None):
    """DMP benefit under different baseline predictors.

    The premise check: a better predictor leaves fewer mispredictions,
    so DMP's *relative* benefit should shrink as the predictor improves
    — but stay positive (hard branches remain hard under any history
    predictor).
    """
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    selection = SelectionConfig.all_best_heur()
    configs = [(f"predictor={kind}", selection) for kind in kinds]
    processors = [ProcessorConfig(predictor_kind=kind) for kind in kinds]
    means = _sweep(configs, scale, benchmarks,
                   processor_configs=processors, jobs=jobs)
    return {"means": means, "kind": "predictor_sensitivity",
            "scale": scale}


def run_easy_branch_filter(scale=1.0, benchmarks=None,
                           floors=(0.0, 0.01, 0.03), jobs=None):
    """§8.3 extension: drop always-easy branches from selection."""
    benchmarks = benchmarks or DEFAULT_BENCHMARKS
    configs = []
    for floor in floors:
        base = SelectionConfig.all_best_cost()
        configs.append(
            (
                f"min_misp={floor:.2f}",
                SelectionConfig(
                    enable_short=base.enable_short,
                    enable_return_cfm=base.enable_return_cfm,
                    enable_loop=base.enable_loop,
                    cost_model=base.cost_model,
                    min_misp_rate=floor,
                    name=f"cost-floor{int(floor * 100)}",
                ),
            )
        )
    means = _sweep(configs, scale, benchmarks, jobs=jobs)
    return {"means": means, "kind": "easy_branch_filter", "scale": scale}


def campaign_spec_confidence_threshold(scale=1.0, benchmarks=None,
                                       values=(6, 10, 14, 15)):
    """The JRS-threshold ablation as a durable campaign."""
    from repro.campaign import Axis, CampaignSpec

    return CampaignSpec(
        name="confidence-threshold",
        benchmarks=tuple(benchmarks or DEFAULT_BENCHMARKS),
        scale=scale,
        selection="all-best-heur",
        axes=(Axis("proc.confidence_threshold", tuple(values)),),
    )


def campaign_spec_predictor_sensitivity(scale=1.0, benchmarks=None,
                                        kinds=("bimodal", "gshare",
                                               "tournament",
                                               "perceptron")):
    """The predictor-sensitivity ablation as a durable campaign."""
    from repro.campaign import Axis, CampaignSpec

    return CampaignSpec(
        name="predictor-sensitivity",
        benchmarks=tuple(benchmarks or DEFAULT_BENCHMARKS),
        scale=scale,
        selection="all-best-heur",
        axes=(Axis("proc.predictor_kind", tuple(kinds)),),
    )


def campaign_spec_max_cfm(scale=1.0, benchmarks=None, values=(1, 2, 3)):
    """The MAX_CFM ablation as a durable campaign.

    Note the monolithic :func:`run_max_cfm` also flips on the short/
    return/loop passes; the campaign preset ``all-best-heur`` does the
    same, so the two agree cell-for-cell.
    """
    from repro.campaign import Axis, CampaignSpec

    return CampaignSpec(
        name="max-cfm",
        benchmarks=tuple(benchmarks or DEFAULT_BENCHMARKS),
        scale=scale,
        selection="all-best-heur",
        axes=(Axis("max_cfm", tuple(values)),),
    )


def format_result(result):
    rows = [(label, percent(value))
            for label, value in result["means"].items()]
    return render_table(
        ["Configuration", "Mean speedup"],
        rows,
        title=f"Ablation: {result['kind']}",
    )
