"""Table 1: baseline processor configuration and DMP support.

This "experiment" verifies and prints the simulated machine's
parameters; the values *are* the paper's Table 1 rows.
"""

from repro.uarch import ProcessorConfig
from repro.experiments.report import render_table


def run(config=None):
    """Collect the machine description as labeled rows."""
    cfg = config or ProcessorConfig()
    rows = [
        ("Front End",
         f"{cfg.icache_kb}KB, {cfg.icache_assoc}-way, "
         f"{cfg.icache_latency}-cycle I-cache; fetches up to "
         f"{cfg.max_cond_branches_per_cycle} conditional branches/cycle"),
        ("Branch Predictors",
         f"{cfg.perceptron_entries}-entry perceptron, "
         f"{cfg.perceptron_history}-bit history; "
         f"{cfg.btb_entries}-entry BTB; {cfg.ras_depth}-entry RAS; "
         f"minimum misprediction penalty "
         f"{cfg.min_misprediction_penalty} cycles"),
        ("Execution Core",
         f"{cfg.fetch_width}-wide fetch/retire; {cfg.rob_size}-entry "
         f"reorder buffer"),
        ("Memory System",
         f"L1D {cfg.dcache_kb}KB/{cfg.dcache_assoc}-way/"
         f"{cfg.dcache_latency}-cycle; L2 {cfg.l2_kb}KB/{cfg.l2_assoc}-way/"
         f"{cfg.l2_latency}-cycle; {cfg.memory_latency}-cycle memory"),
        ("DMP Support",
         f"{cfg.confidence_entries}-entry (2KB) JRS confidence estimator, "
         f"threshold {cfg.confidence_threshold}; "
         f"{cfg.num_predicate_registers} predicate registers; "
         f"{cfg.num_cfm_registers} CFM registers"),
    ]
    return {"rows": rows, "config": cfg}


def format_result(result):
    return render_table(
        ["Component", "Configuration"],
        result["rows"],
        title="Table 1. Baseline processor configuration and DMP support",
    )


def main():
    print(format_result(run()))


if __name__ == "__main__":
    main()
