"""Tournament (combining) predictor: bimodal + gshare + chooser.

Alpha-21264-style: a per-pc chooser of 2-bit counters selects between a
local (bimodal) and a global (gshare) component.  Used by the
predictor-sensitivity ablation; the paper's baseline remains the
perceptron.
"""

from repro.branchpred.base import BranchPredictor
from repro.branchpred.bimodal import BimodalPredictor
from repro.branchpred.gshare import GsharePredictor


class TournamentPredictor(BranchPredictor):
    """Chooser-based hybrid of bimodal and gshare."""

    name = "tournament"

    def __init__(self, chooser_size=4096, table_bits=13, history_bits=12):
        if chooser_size <= 0:
            raise ValueError("chooser_size must be positive")
        self.chooser_size = chooser_size
        self._bimodal = BimodalPredictor(table_size=chooser_size)
        self._gshare = GsharePredictor(
            table_bits=table_bits, history_bits=history_bits
        )
        self.reset()

    def reset(self):
        self._bimodal.reset()
        self._gshare.reset()
        # 0-1 favour bimodal, 2-3 favour gshare; start neutral-global.
        self._chooser = [2] * self.chooser_size

    def _choose_gshare(self, pc):
        return self._chooser[pc % self.chooser_size] >= 2

    def predict(self, pc):
        if self._choose_gshare(pc):
            return self._gshare.predict(pc)
        return self._bimodal.predict(pc)

    def update(self, pc, taken):
        bimodal_prediction = self._bimodal.predict(pc)
        gshare_prediction = self._gshare.predict(pc)
        # Train the chooser toward whichever component was right when
        # they disagreed.
        if bimodal_prediction != gshare_prediction:
            index = pc % self.chooser_size
            if gshare_prediction == taken:
                self._chooser[index] = min(3, self._chooser[index] + 1)
            else:
                self._chooser[index] = max(0, self._chooser[index] - 1)
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)
