"""Perceptron branch predictor (Jiménez & Lin, HPCA-7).

The paper's Table 1 baseline: 16KB budget, 64-bit global history,
256 perceptrons.  Each perceptron holds a bias weight plus one weight
per history bit; the prediction is the sign of the dot product of the
weights with the ±1-encoded history.  Training (on a misprediction or
when the output magnitude is at most the threshold θ) nudges each
weight toward agreement with the outcome.  θ follows the authors'
empirical formula ``θ = ⌊1.93·h + 14⌋``.

Weights are kept in a numpy ``int32`` matrix — the 64-element dot
product per prediction dominates simulator time otherwise.
"""

import numpy as np

from repro.branchpred.base import BranchPredictor

#: 8-bit signed weight clamp, as in the hardware proposal.
WEIGHT_MIN = -128
WEIGHT_MAX = 127


class PerceptronPredictor(BranchPredictor):
    """The Table 1 perceptron predictor."""

    name = "perceptron"

    def __init__(self, num_perceptrons=256, history_bits=64):
        if num_perceptrons <= 0 or history_bits <= 0:
            raise ValueError("bad perceptron geometry")
        self.num_perceptrons = num_perceptrons
        self.history_bits = history_bits
        self.threshold = int(1.93 * history_bits + 14)
        self.reset()

    def reset(self):
        # Column 0 is the bias weight; columns 1..h pair with history.
        self._weights = np.zeros(
            (self.num_perceptrons, self.history_bits + 1), dtype=np.int32
        )
        # History as ±1 values, most recent at index 0.
        self._history = np.ones(self.history_bits, dtype=np.int32)
        self._bias_input = np.int32(1)

    def _index(self, pc):
        return pc % self.num_perceptrons

    def _output(self, pc):
        row = self._weights[self._index(pc)]
        return int(row[0]) + int(row[1:] @ self._history)

    def predict(self, pc):
        return self._output(pc) >= 0

    def update(self, pc, taken):
        index = self._index(pc)
        output = self._output(pc)
        predicted = output >= 0
        target = 1 if taken else -1
        if predicted != taken or abs(output) <= self.threshold:
            row = self._weights[index]
            row[0] = min(WEIGHT_MAX, max(WEIGHT_MIN, int(row[0]) + target))
            adjusted = row[1:] + target * self._history
            np.clip(adjusted, WEIGHT_MIN, WEIGHT_MAX, out=adjusted)
            row[1:] = adjusted
        # Shift the new outcome into the history (most recent first).
        self._history[1:] = self._history[:-1]
        self._history[0] = target
