"""Enhanced JRS branch confidence estimator.

Jacobsen, Rotenberg & Smith's estimator, with the "enhanced" indexing
of Grunwald et al. (pc XOR global branch history).  Table 1's DMP
support: 2KB table, 12-bit history, threshold 14.  Each entry is a
4-bit *miss distance counter*: incremented (saturating at 15) on a
correct prediction of the branch mapping there, reset to zero on a
misprediction.  A branch is *high confidence* when its counter is at
least the threshold; DMP enters dpred-mode on *low* confidence.

The estimator also measures its own PVN (predictive value of a
negative — the fraction of low-confidence predictions that really were
mispredictions), the quantity the paper's cost model calls
``Acc_Conf`` (§4.1, usually 15%–50%).
"""

COUNTER_MAX = 15


class JRSConfidenceEstimator:
    """The enhanced JRS confidence estimator of Table 1."""

    def __init__(self, num_entries=4096, history_bits=12, threshold=14):
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        if not 0 < threshold <= COUNTER_MAX:
            raise ValueError("threshold must be in (0, 15]")
        self.num_entries = num_entries
        self.history_bits = history_bits
        self.threshold = threshold
        self._history_mask = (1 << history_bits) - 1
        self.reset()

    def reset(self):
        self._counters = [0] * self.num_entries
        self._history = 0
        self.low_confidence_count = 0
        self.low_confidence_mispredicted = 0
        self.queries = 0

    def _index(self, pc):
        return (pc ^ (self._history & (self.num_entries - 1))) \
            % self.num_entries

    def is_low_confidence(self, pc):
        """Query confidence for the branch at ``pc`` (no state change)."""
        return self._counters[self._index(pc)] < self.threshold

    def update(self, pc, mispredicted, was_low_confidence=None):
        """Commit the outcome of one prediction.

        ``was_low_confidence`` lets the caller pass the confidence it
        acted on (queried before other updates); if omitted the current
        table state is consulted.
        """
        index = self._index(pc)
        if was_low_confidence is None:
            was_low_confidence = self._counters[index] < self.threshold
        self.queries += 1
        if was_low_confidence:
            self.low_confidence_count += 1
            if mispredicted:
                self.low_confidence_mispredicted += 1
        if mispredicted:
            self._counters[index] = 0
        else:
            self._counters[index] = min(COUNTER_MAX, self._counters[index] + 1)
        self._history = ((self._history << 1) | int(mispredicted)) \
            & self._history_mask

    @property
    def pvn(self):
        """Measured Acc_Conf: P(mispredicted | low confidence)."""
        if self.low_confidence_count == 0:
            return 0.0
        return self.low_confidence_mispredicted / self.low_confidence_count

    @property
    def coverage(self):
        """Fraction of all predictions flagged low-confidence."""
        if self.queries == 0:
            return 0.0
        return self.low_confidence_count / self.queries

    def snapshot(self):
        """JSON-ready summary of the estimator's own behaviour."""
        return {
            "queries": self.queries,
            "low_confidence": self.low_confidence_count,
            "low_confidence_mispredicted": self.low_confidence_mispredicted,
            "pvn": self.pvn,
            "coverage": self.coverage,
        }

    def record_metrics(self, metrics, prefix="confidence"):
        """Mirror :meth:`snapshot` into a metrics registry.

        Gauges hold the *latest* PVN/coverage (one value per run); the
        raw tallies land in counters so multiple runs accumulate.
        """
        metrics.gauge(f"{prefix}_pvn",
                      help="measured Acc_Conf of the last run"
                      ).set(self.pvn)
        metrics.gauge(f"{prefix}_coverage",
                      help="low-confidence fraction of the last run"
                      ).set(self.coverage)
