"""Branch target buffer."""


class BranchTargetBuffer:
    """Direct-mapped BTB (Table 1: 4K entries).

    Our ISA has only direct branches, so the BTB can only miss cold or
    on aliasing — a miss means the front end discovers the target at
    decode and pays a small bubble, which the timing model charges.
    """

    def __init__(self, num_entries=4096, miss_bubble_cycles=2):
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.miss_bubble_cycles = miss_bubble_cycles
        self.hits = 0
        self.misses = 0
        self.reset()

    def reset(self):
        self._tags = [None] * self.num_entries
        self._targets = [None] * self.num_entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc):
        """Predicted target of the control instruction at ``pc`` or None."""
        index = pc % self.num_entries
        if self._tags[index] == pc:
            self.hits += 1
            return self._targets[index]
        self.misses += 1
        return None

    def insert(self, pc, target):
        index = pc % self.num_entries
        self._tags[index] = pc
        self._targets[index] = target
