"""Bimodal (per-pc 2-bit counter) predictor."""

from repro.branchpred.base import BranchPredictor


class BimodalPredictor(BranchPredictor):
    """A table of 2-bit saturating counters indexed by pc.

    The weakest predictor in the package; used in tests and as the
    wrong-path bias fallback.  Counters start weakly taken (2), the
    common convention.
    """

    name = "bimodal"

    def __init__(self, table_size=4096):
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        self.table_size = table_size
        self.reset()

    def reset(self):
        self._counters = [2] * self.table_size

    def _index(self, pc):
        return pc % self.table_size

    def predict(self, pc):
        return self._counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
