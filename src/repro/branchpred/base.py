"""Common branch predictor interface."""

from dataclasses import dataclass, field


@dataclass
class PredictorStats:
    """Prediction accuracy bookkeeping."""

    predictions: int = 0
    mispredictions: int = 0

    def record(self, correct):
        self.predictions += 1
        if not correct:
            self.mispredictions += 1

    @property
    def accuracy(self):
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    @property
    def misprediction_rate(self):
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictor:
    """Interface all conditional-branch direction predictors implement.

    The contract (matching how the timing simulator drives it):

    1. ``predict(pc)`` returns the predicted direction *without* any
       state change.
    2. ``update(pc, taken)`` commits the true outcome, updating both the
       pattern tables and the global history.

    Predictors update history non-speculatively (at update time).  This
    is the standard trace-driven approximation; the paper's simulator
    checkpoints history speculatively, which only matters under deep
    nests of unresolved branches.
    """

    name = "base"

    def predict(self, pc):
        raise NotImplementedError

    def update(self, pc, taken):
        raise NotImplementedError

    def predict_and_update(self, pc, taken):
        """Predict, commit the outcome, and return the prediction."""
        predicted = self.predict(pc)
        self.update(pc, taken)
        return predicted

    def reset(self):
        """Restore power-on state."""
        raise NotImplementedError
