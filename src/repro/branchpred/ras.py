"""Return address stack predictor."""


class ReturnAddressStack:
    """Circular return-address stack (Table 1: 64 entries).

    Predicts ``RET`` targets.  Overflow silently wraps (overwriting the
    oldest entry), so sufficiently deep recursion causes return
    mispredictions — exactly the hardware behaviour.
    """

    def __init__(self, depth=64):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.overflows = 0
        self.mispredictions = 0
        self.predictions = 0
        self.reset()

    def reset(self):
        self._stack = [None] * self.depth
        self._top = 0       # index of next free slot
        self._valid = 0     # how many live entries (≤ depth)
        self.overflows = 0
        self.mispredictions = 0
        self.predictions = 0

    def push(self, return_pc):
        if self._valid == self.depth:
            self.overflows += 1
        else:
            self._valid += 1
        self._stack[self._top] = return_pc
        self._top = (self._top + 1) % self.depth

    def pop_predict(self, actual_target):
        """Pop a prediction and record whether it matched ``actual_target``.

        Returns True when the prediction was correct.  An empty stack
        predicts nothing and counts as a misprediction.
        """
        self.predictions += 1
        if self._valid == 0:
            self.mispredictions += 1
            return False
        self._top = (self._top - 1) % self.depth
        self._valid -= 1
        predicted = self._stack[self._top]
        correct = predicted == actual_target
        if not correct:
            self.mispredictions += 1
        return correct
