"""Gshare global-history predictor."""

from repro.branchpred.base import BranchPredictor


class GsharePredictor(BranchPredictor):
    """McFarling's gshare: pc XOR global history indexes 2-bit counters.

    A fast mid-quality predictor; the profiler uses it by default
    because it is several times cheaper per prediction than the
    perceptron while ranking branches by predictability almost
    identically (what the High-BP-5 baseline and the cost model need).
    """

    name = "gshare"

    def __init__(self, table_bits=14, history_bits=12):
        if table_bits <= 0 or history_bits < 0:
            raise ValueError("bad gshare geometry")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table_mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self.reset()

    def reset(self):
        self._counters = [2] * (1 << self.table_bits)
        self._history = 0

    def _index(self, pc):
        return (pc ^ (self._history & self._table_mask)) & self._table_mask

    def predict(self, pc):
        return self._counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
