"""Branch prediction and confidence estimation.

The paper's baseline front end (Table 1) uses a 16KB perceptron
predictor with 64-bit global history and 256 entries, a 4K-entry BTB, a
64-entry return address stack, and — for DMP — a 2KB enhanced JRS
confidence estimator with 12-bit history and threshold 14.  All of those
are implemented here, plus gshare and bimodal predictors used in tests
and ablations.
"""

from repro.branchpred.base import BranchPredictor, PredictorStats
from repro.branchpred.bimodal import BimodalPredictor
from repro.branchpred.gshare import GsharePredictor
from repro.branchpred.perceptron import PerceptronPredictor
from repro.branchpred.tournament import TournamentPredictor
from repro.branchpred.btb import BranchTargetBuffer
from repro.branchpred.ras import ReturnAddressStack
from repro.branchpred.confidence import JRSConfidenceEstimator

__all__ = [
    "BranchPredictor",
    "PredictorStats",
    "BimodalPredictor",
    "GsharePredictor",
    "PerceptronPredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "JRSConfidenceEstimator",
    "make_predictor",
]


def make_predictor(kind="perceptron", **kwargs):
    """Factory used by config files: ``perceptron``/``gshare``/``bimodal``."""
    predictors = {
        "perceptron": PerceptronPredictor,
        "gshare": GsharePredictor,
        "bimodal": BimodalPredictor,
        "tournament": TournamentPredictor,
    }
    try:
        cls = predictors[kind]
    except KeyError:
        raise ValueError(f"unknown predictor kind {kind!r}") from None
    return cls(**kwargs)
