"""Small filesystem helpers shared by the CLIs."""

import os


def ensure_parent(path):
    """Create ``path``'s parent directory if missing; returns ``path``.

    Every CLI output flag (``--trace``, ``--metrics``, ``--manifest``,
    ``-o``) goes through here so ``results/deep/nested/out.json`` works
    without a manual ``mkdir -p`` first.
    """
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    return path
