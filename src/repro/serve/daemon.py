"""The HTTP daemon: ``python -m repro serve --port N``.

Stdlib :class:`~http.server.ThreadingHTTPServer` — one thread per
request, the :class:`~repro.serve.app.ServeApp` underneath holding the
warm state.  The server is configured for *graceful drain*:
``daemon_threads`` is off and ``block_on_close`` on, so a SIGINT or
SIGTERM stops accepting new connections, lets every in-flight request
finish, and only then exits — with the interrupt convention shared by
the campaign CLI (exit 130 for SIGINT, 143 for SIGTERM), no traceback.

The signal handler must not call :meth:`~socketserver.BaseServer.shutdown`
directly: the handler runs on the main thread, which is *inside*
``serve_forever``, and ``shutdown`` blocks until ``serve_forever``
exits — a deadlock.  A helper thread makes the call instead.
"""

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.tracectx import TRACE_HEADER
from repro.serve.app import ServeApp

#: Default listen address.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Exit codes for the two drain signals (128 + signal number).
EXIT_SIGINT = 130
EXIT_SIGTERM = 143


class ServeServer(ThreadingHTTPServer):
    """Threaded HTTP server that drains in-flight requests on close."""

    #: Handler threads are joined by ``server_close`` (the drain).
    daemon_threads = False
    block_on_close = True

    def __init__(self, address, app, verbose=False):
        self.app = app
        self.verbose = verbose
        super().__init__(address, RequestHandler)


class RequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` POSTs and the two GET endpoints to the app."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status, body, content_type="application/json"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status, message):
        body = (json.dumps({"error": message}, sort_keys=True) + "\n") \
            .encode("utf-8")
        self._send(status, body)

    def do_GET(self):
        app = self.server.app
        started = time.monotonic()
        if self.path == "/healthz":
            status, body = app.healthz()
            self._send(status, body)
        elif self.path == "/metrics":
            status, body = app.metrics()
            self._send(
                status, body,
                content_type=(
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8"
                ),
            )
        elif self.path.startswith("/v1/trace/"):
            trace_id = self.path[len("/v1/trace/"):]
            status, body = app.trace_timeline(trace_id)
            self._send(status, body)
        else:
            status = 404
            self._error(status, f"unknown path {self.path!r}")
        app.log_access(
            "GET", self.path, status,
            (time.monotonic() - started) * 1000.0,
        )

    def do_POST(self):
        app = self.server.app
        started = time.monotonic()
        if not self.path.startswith("/v1/"):
            self._error(404, f"unknown path {self.path!r}")
            app.log_access(
                "POST", self.path, 404,
                (time.monotonic() - started) * 1000.0,
            )
            return
        endpoint = self.path[len("/v1/"):]
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self._error(400, "bad Content-Length")
            app.log_access(
                "POST", self.path, 400,
                (time.monotonic() - started) * 1000.0,
            )
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._error(400, "request body is not valid JSON")
            app.log_access(
                "POST", self.path, 400,
                (time.monotonic() - started) * 1000.0,
            )
            return
        status, response, meta = app.handle_request(
            endpoint, body, traceparent=self.headers.get(TRACE_HEADER)
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(response)))
        if meta.get("traceparent"):
            self.send_header(TRACE_HEADER, meta["traceparent"])
        self.end_headers()
        self.wfile.write(response)
        app.log_access("POST", self.path, status, meta["duration_ms"],
                       meta=meta)


def build_server(address, app=None, verbose=False):
    """A ready-to-serve :class:`ServeServer` (tests drive this directly).

    ``address`` is ``(host, port)``; port 0 binds an ephemeral port —
    read the actual one back from ``server.server_address``.
    """
    return ServeServer(address, app if app is not None else ServeApp(),
                       verbose=verbose)


def _warm(benchmarks, scale):
    """Pre-build artifacts and shared analyses before serving."""
    from repro.compiler import shared_manager
    from repro.experiments.runner import get_artifacts

    for benchmark in benchmarks:
        artifacts = get_artifacts(benchmark, scale=scale)
        shared_manager().analysis(artifacts.program, artifacts.profile)
        print(f"[serve] warmed {benchmark} (scale {scale:g})",
              flush=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Warm-state serving daemon for compile/simulate/explain "
            "requests (see docs/serving.md)."
        ),
    )
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             f"0 = ephemeral, printed at startup)")
    parser.add_argument("--warm", default="", metavar="BENCHMARKS",
                        help="comma-separated benchmarks to pre-build "
                             "artifacts for before serving")
    parser.add_argument("--warm-scale", type=float, default=1.0,
                        metavar="S",
                        help="trace scale used by --warm (default 1.0)")
    parser.add_argument("--sim-engine",
                        choices=("auto", "scalar", "vectorized"),
                        default=None,
                        help="process-default timing-simulator engine "
                             "(per-request 'engine' fields override it; "
                             "results are engine-independent)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent artifact cache directory")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="skip the persistent artifact cache")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="span spool directory for distributed "
                             "tracing (default: a fresh temp dir, "
                             "printed at startup)")
    parser.add_argument("--no-trace", action="store_true",
                        help="disable per-request tracing and "
                             "/v1/trace")
    parser.add_argument("--access-log", default=None, metavar="FILE",
                        help="append structured access-log lines to "
                             "FILE (default: stderr)")
    parser.add_argument("--no-access-log", action="store_true",
                        help="disable the structured access log")
    args = parser.parse_args(argv)

    if args.sim_engine is not None:
        from repro.uarch import set_default_engine

        set_default_engine(args.sim_engine)
    if args.cache_dir:
        from repro.exec import artifact_cache

        artifact_cache.set_cache_dir(args.cache_dir)
    if args.no_disk_cache:
        from repro.exec import artifact_cache

        artifact_cache.set_disabled(True)

    trace_dir = None
    if not args.no_trace:
        trace_dir = args.trace_dir
        if trace_dir is None:
            import tempfile

            trace_dir = tempfile.mkdtemp(prefix="repro-serve-trace-")
    access_log = None
    if not args.no_access_log:
        from repro.serve.accesslog import AccessLog

        access_log = AccessLog(
            args.access_log if args.access_log else sys.stderr
        )

    app = ServeApp(trace_dir=trace_dir, access_log=access_log)
    try:
        server = build_server((args.host, args.port), app,
                              verbose=args.verbose)
    except OSError as exc:
        print(f"python -m repro serve: error: cannot bind "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1

    warm_list = [b.strip() for b in args.warm.split(",") if b.strip()]
    if warm_list:
        _warm(warm_list, args.warm_scale)

    stop = {"signum": None}

    def request_shutdown(signum, frame):
        if stop["signum"] is not None:
            return  # already draining; a second signal changes nothing
        stop["signum"] = signum
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, request_shutdown)
        except ValueError:  # pragma: no cover — not the main thread
            pass

    host, port = server.server_address[:2]
    # The serving line is a contract: tests and the CI smoke job parse
    # the bound port out of it (needed for --port 0).
    print(f"[serve] listening on http://{host}:{port} "
          f"(endpoints: /v1/compile /v1/simulate /v1/explain "
          f"/v1/trace /healthz /metrics)", flush=True)
    if trace_dir is not None:
        print(f"[serve] tracing to {trace_dir} "
              f"(python -m repro trace show <id> --dir {trace_dir})",
              flush=True)
    from repro.obs.context import telemetry

    try:
        # Install the app's registry as the process-wide metrics sink:
        # the telemetry context is module-global, so every request
        # thread's counters (cache hits, campaign counters, serve_*)
        # land where GET /metrics reads them.
        with telemetry(metrics=app.registry):
            server.serve_forever()
    finally:
        server.server_close()  # joins handler threads: the drain
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    if stop["signum"] == signal.SIGTERM:
        print("[serve] drained and stopped (SIGTERM)", flush=True)
        return EXIT_SIGTERM
    if stop["signum"] == signal.SIGINT:
        print("[serve] drained and stopped (SIGINT)", flush=True)
        return EXIT_SIGINT
    return 0


if __name__ == "__main__":
    sys.exit(main())
