"""Structured serve access log: one JSON line per request.

Every request the daemon answers — ``/v1/*`` POSTs and the GET
endpoints alike — produces one line::

    {"ts": ..., "method": "POST", "path": "/v1/simulate",
     "status": 200, "duration_ms": 12.3,
     "trace_id": "4bf9...", "coalesced": false,
     "leader_trace_id": null}

so a coalesced follower is attributable to the leader whose
computation answered it (``coalesced: true`` + the leader's trace id),
and every line joins against ``python -m repro trace show`` output via
``trace_id``.  The sink is stderr by default or ``--access-log FILE``;
writes are line-atomic under a lock and flushed per record, and
:func:`read_access_log` tolerates a torn final line exactly like the
campaign journal reader (the daemon may be killed mid-write).
"""

import json
import threading
import time

from repro.obs.tracer import iter_records


class AccessLog:
    """Thread-safe JSON-lines access log over a stream or file path."""

    def __init__(self, target):
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
            self.path = getattr(target, "name", None)
        else:
            from repro.ioutil import ensure_parent

            ensure_parent(target)
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True
            self.path = target

    def log(self, method, path, status, duration_ms, trace_id=None,
            coalesced=False, leader_trace_id=None):
        """Append one access record; never raises into the handler."""
        record = {
            "ts": round(time.time(), 6),
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "trace_id": trace_id,
            "coalesced": bool(coalesced),
            "leader_trace_id": leader_trace_id,
        }
        line = json.dumps(record, sort_keys=False) + "\n"
        try:
            with self._lock:
                self._handle.write(line)
                self._handle.flush()
        except (OSError, ValueError):  # pragma: no cover — closed sink
            pass
        return record

    def close(self):
        with self._lock:
            if self._owns_handle:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover
                    pass


def read_access_log(path, corrupt=None):
    """Access records from ``path``, skipping torn/malformed lines.

    ``corrupt``, when a list, collects ``(line_number, message)`` pairs
    for skipped lines — the same contract as
    :func:`repro.obs.tracer.iter_records`.
    """
    return list(iter_records(path, strict=False, corrupt=corrupt))
