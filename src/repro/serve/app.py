"""Request handling for the serving daemon: normalize, coalesce, run.

The app is deliberately separate from the HTTP plumbing
(:mod:`repro.serve.daemon`) so tests can drive endpoints directly:
:meth:`ServeApp.handle` takes ``(endpoint, body dict)`` and returns
``(status, bytes)`` with no sockets involved.

Three invariants this module owns:

**Byte-identity.**  Each ``/v1`` endpoint produces exactly the bytes
the corresponding CLI prints for the same parameters — ``compile``
mirrors ``python -m repro compile`` (including its default preset and
case handling), ``explain`` mirrors ``python -m repro explain --json``,
and ``simulate`` is one campaign cell's deterministic result (the
``ledger`` annotation popped, canonical JSON), byte-identical to what
the campaign journal records for the same cell.

**Single-flight coalescing.**  Concurrent identical requests share one
computation: the first arrival (the *leader*) runs it, the rest wait on
an event and receive the same bytes.  The coalescing key is
:func:`repro.campaign.spec.content_hash` over the normalized request —
for ``/v1/simulate`` that hash *is* the campaign cell ID.  A
per-request ``engine`` override is deliberately excluded from the key
(engines are bit-identical by contract, so requests differing only in
engine coalesce).

**Warm-state safety.**  The process-wide caches the daemon exists to
keep warm — the shared :class:`~repro.compiler.AnalysisManager`, the
runner's artifact/baseline LRUs, the disk artifact cache — are plain
dict-based structures with no internal locking, so computations are
serialized under one lock.  Coalescing makes the common concurrent
case (duplicate requests) cheap anyway; distinct requests queue.
"""

import json
import threading
import time

from repro.campaign.spec import DEFAULT_CELL, canonical_json, content_hash
from repro.errors import ReproError

#: Latency histogram buckets (seconds) for the per-endpoint timers.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Errors that mean "bad request", not "broken server": unknown
#: benchmarks/presets, malformed pipeline specs, bad parameter values.
_CLIENT_ERRORS = (KeyError, ValueError, ReproError)


class RequestError(Exception):
    """A malformed or unsatisfiable request (HTTP 400)."""

    def __init__(self, message):
        super().__init__(message)
        self.message = message


class _Call:
    """One in-flight computation other requests may wait on."""

    __slots__ = ("event", "result", "error", "meta")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.meta = None


class SingleFlight:
    """Coalesce concurrent calls with the same key into one execution.

    :meth:`do` returns ``(result, coalesced)`` where ``coalesced`` is
    True for followers that waited on the leader's computation.  The
    leader's exception (if any) propagates to every waiter.

    ``meta`` is an arbitrary leader-provided value (here: the leader's
    trace identity) published on the call before followers are
    released; a follower's ``on_coalesce`` callback receives it, so a
    coalesced response can name the trace whose work answered it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = {}

    def do(self, key, fn, meta=None, on_coalesce=None):
        with self._lock:
            call = self._inflight.get(key)
            if call is not None:
                leader = False
            else:
                call = _Call()
                call.meta = meta
                self._inflight[key] = call
                leader = True
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            if on_coalesce is not None:
                on_coalesce(call.meta)
            return call.result, True
        try:
            call.result = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                del self._inflight[key]
            call.event.set()
        return call.result, False


def _take(body, key, default=None):
    value = body.pop(key, default)
    return value


def _reject_unknown(body, endpoint):
    if body:
        raise RequestError(
            f"{endpoint}: unknown field(s) "
            f"{', '.join(sorted(map(str, body)))}"
        )


def _normalize_common(body, endpoint, workload_key):
    workload = _take(body, workload_key)
    if not workload or not isinstance(workload, str):
        raise RequestError(f"{endpoint}: {workload_key!r} is required")
    input_set = _take(body, "input_set", "reduced")
    try:
        scale = float(_take(body, "scale", 1.0))
    except (TypeError, ValueError):
        raise RequestError(f"{endpoint}: 'scale' must be a number") \
            from None
    return workload, input_set, scale


class ServeApp:
    """Warm-state request execution behind the HTTP daemon.

    ``trace_dir`` (optional) turns on distributed tracing: every
    request gets a :class:`~repro.obs.tracectx.TraceContext` — joined
    from the ``X-Repro-Trace-Id`` header when the client sent one,
    freshly rooted otherwise — and its spans spool into ``trace_dir``
    for ``GET /v1/trace/<id>`` and ``python -m repro trace show``.
    With the default ``trace_dir=None`` the request path is exactly the
    pre-tracing one (one ``None`` check per request), which is what
    keeps the serve benchmark's tracing-disabled throughput flat.
    """

    def __init__(self, registry=None, trace_dir=None, access_log=None):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracectx import SpanSpool

        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.started = time.time()
        self.trace_dir = trace_dir
        self._spool = SpanSpool(trace_dir) if trace_dir else None
        self.access = access_log
        self._flight = SingleFlight()
        #: Serializes computations: the warm caches underneath
        #: (AnalysisManager, runner LRUs) are not thread-safe.
        self._compute_lock = threading.Lock()

    # -- endpoint table ------------------------------------------------

    def handle(self, endpoint, body, traceparent=None):
        """Dispatch one ``/v1`` request; returns ``(status, bytes)``.

        Thin compatibility wrapper over :meth:`handle_request` for
        callers that do not care about per-request metadata.
        """
        status, response, _meta = self.handle_request(
            endpoint, body, traceparent=traceparent
        )
        return status, response

    def handle_request(self, endpoint, body, traceparent=None):
        """Dispatch one ``/v1`` request with request metadata.

        Returns ``(status, bytes, meta)`` where ``meta`` carries the
        request's trace identity (``trace_id``/``traceparent`` for the
        response header, ``None`` when tracing is off), its
        ``duration_ms``, whether it was ``coalesced``, and — for a
        coalesced follower — the ``leader`` trace identity whose
        computation produced the bytes.

        ``body`` is the parsed JSON request object (it is consumed).
        Errors come back as ``(4xx/5xx, error-JSON bytes)`` — they are
        never coalesced, so a follower of a failing leader re-raises
        into its own error response.
        """
        from repro.obs import tracectx

        meta = {
            "endpoint": endpoint,
            "trace_id": None,
            "traceparent": None,
            "coalesced": False,
            "leader": None,
            "duration_ms": 0.0,
            "status": 0,
        }
        ctx = self._request_context(traceparent)
        started = time.monotonic()
        with tracectx.activate(ctx):
            if ctx is not None:
                meta["trace_id"] = ctx.trace_id
                from repro.obs.spans import SpanTree, span

                # A throwaway per-request tree: the *global* span tree
                # stack is not safe under concurrent request threads,
                # and the cross-process trace hierarchy lives on the
                # TraceContext, not the tree.  Metrics still land in
                # the (thread-safe) shared registry.
                with span(f"serve.{endpoint}", tree=SpanTree(),
                          metrics=self.registry):
                    meta["traceparent"] = ctx.traceparent()
                    status, response = self._dispatch(
                        endpoint, body, meta
                    )
            else:
                status, response = self._dispatch(endpoint, body, meta)
        meta["duration_ms"] = (time.monotonic() - started) * 1000.0
        meta["status"] = status
        return status, response, meta

    def _request_context(self, traceparent):
        """The request's trace context (None when tracing is off)."""
        if self._spool is None:
            return None
        from repro.obs import tracectx

        if traceparent:
            try:
                trace_id, parent = tracectx.parse_traceparent(traceparent)
            except ValueError:
                trace_id, parent = tracectx.new_trace_id(), None
        else:
            trace_id, parent = tracectx.new_trace_id(), None
        return tracectx.TraceContext(
            trace_id, parent, service="serve", spool=self._spool
        )

    def _dispatch(self, endpoint, body, meta):
        handlers = {
            "compile": self._compile,
            "simulate": self._simulate,
            "explain": self._explain,
        }
        handler = handlers.get(endpoint)
        if handler is None:
            return 404, _error_bytes(f"unknown endpoint {endpoint!r}")
        self.registry.counter(
            "serve_requests_total",
            help="HTTP requests accepted by the serving daemon",
        ).inc()
        started = time.monotonic()
        try:
            if not isinstance(body, dict):
                raise RequestError(
                    f"{endpoint}: request body must be a JSON object"
                )
            response, coalesced = handler(dict(body), meta)
        except RequestError as exc:
            self._count_error()
            return 400, _error_bytes(exc.message)
        except _CLIENT_ERRORS as exc:
            self._count_error()
            message = exc.args[0] if exc.args else str(exc)
            return 400, _error_bytes(str(message))
        except Exception as exc:  # noqa: BLE001 — boundary
            self._count_error()
            return 500, _error_bytes(f"{type(exc).__name__}: {exc}")
        finally:
            self.registry.histogram(
                f"serve_{endpoint}_latency_seconds", LATENCY_BUCKETS,
                help=f"/v1/{endpoint} request latency",
            ).observe(time.monotonic() - started)
        if coalesced:
            meta["coalesced"] = True
            self.registry.counter(
                "serve_coalesced_total",
                help="requests answered from a coalesced in-flight "
                     "computation",
            ).inc()
        return 200, response

    def _count_error(self):
        self.registry.counter(
            "serve_errors_total",
            help="requests that ended in an error response",
        ).inc()

    def _run(self, op, params, engine, fn, meta=None):
        """Single-flight ``fn`` under the warm-state lock.

        The key hashes the *normalized* request (op + params) with the
        same :func:`content_hash` the campaign layer uses; ``engine``
        stays out of the key because both engines are bit-identical.
        """
        key = content_hash({"op": op, "params": params})
        return self._flight_do(key, engine, fn, meta)

    def _flight_do(self, key, engine, fn, meta):
        """Coalesced execution with leader trace attribution."""
        from repro.obs import tracectx

        def compute():
            from repro.uarch.engine import engine_override

            with self._compute_lock, engine_override(engine):
                return fn()

        ctx = tracectx.current()
        my_identity = None
        if ctx is not None:
            my_identity = {
                "trace_id": ctx.trace_id,
                "span_id": ctx.current_span_id(),
            }

        def on_coalesce(leader_identity):
            if meta is not None:
                meta["leader"] = leader_identity

        return self._flight.do(
            key, compute, meta=my_identity, on_coalesce=on_coalesce
        )

    # -- /v1/compile ---------------------------------------------------

    def _compile(self, body, meta=None):
        benchmark, input_set, scale = _normalize_common(
            body, "compile", "benchmark"
        )
        config = _take(body, "config")
        pipeline = _take(body, "pipeline")
        engine = _take(body, "engine")
        _reject_unknown(body, "compile")
        if config is not None and pipeline is not None:
            raise RequestError(
                "compile: 'config' and 'pipeline' are mutually exclusive"
            )
        params = {
            "benchmark": benchmark, "input_set": input_set,
            "scale": scale, "config": config, "pipeline": pipeline,
        }
        return self._run(
            "compile", params, engine,
            lambda: _compile_bytes(benchmark, input_set, scale,
                                   config, pipeline),
            meta=meta,
        )

    # -- /v1/simulate --------------------------------------------------

    def _simulate(self, body, meta=None):
        benchmark, input_set, scale = _normalize_common(
            body, "simulate", "benchmark"
        )
        selection = _take(body, "selection", "all-best-heur")
        thresholds = _take(body, "thresholds") or {}
        processor = _take(body, "processor") or {}
        engine = _take(body, "engine")
        _reject_unknown(body, "simulate")
        if not isinstance(thresholds, dict) \
                or not isinstance(processor, dict):
            raise RequestError(
                "simulate: 'thresholds' and 'processor' must be objects"
            )
        # Exactly the params dict CampaignSpec._resolve builds, so the
        # coalescing key below == the campaign cell ID for this cell.
        params = {
            "benchmark": benchmark,
            "input_set": input_set,
            "scale": scale,
            "selection": selection,
            "thresholds": thresholds,
            "processor": processor,
            "cell": DEFAULT_CELL,
        }
        key = content_hash(params)
        return self._flight_do(
            key, engine, lambda: _simulate_bytes(params, key), meta
        )

    # -- /v1/explain ---------------------------------------------------

    def _explain(self, body, meta=None):
        workload, input_set, scale = _normalize_common(
            body, "explain", "workload"
        )
        config = _take(body, "config", "all-best-cost")
        pipeline = _take(body, "pipeline")
        engine = _take(body, "engine")
        _reject_unknown(body, "explain")
        params = {
            "workload": workload, "input_set": input_set,
            "scale": scale, "config": config, "pipeline": pipeline,
        }
        return self._run(
            "explain", params, engine,
            lambda: _explain_bytes(workload, input_set, scale,
                                   config, pipeline),
            meta=meta,
        )

    # -- GET endpoints -------------------------------------------------

    def healthz(self):
        """Liveness + warm-state summary as ``(200, bytes)``."""
        from repro.compiler import shared_manager
        from repro.exec import artifact_cache

        manager = shared_manager()
        requests = self.registry.get("serve_requests_total")
        coalesced = self.registry.get("serve_coalesced_total")
        data = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "analysis_cache": manager.stats(),
            "artifact_cache": artifact_cache.info(),
            "requests": requests.value if requests else 0,
            "coalesced": coalesced.value if coalesced else 0,
        }
        body = json.dumps(data, indent=2, sort_keys=True) + "\n"
        return 200, body.encode("utf-8")

    def metrics(self):
        """The registry as OpenMetrics text, ``(200, bytes)``."""
        return 200, self.registry.render_openmetrics().encode("utf-8")

    def trace_timeline(self, trace_id):
        """``GET /v1/trace/<id>``: the merged timeline as JSON bytes.

        404 when tracing is off or the trace has no spans yet; the
        payload is exactly ``python -m repro trace show <id> --json``
        over the daemon's own spool directory (schema-pinned).
        """
        if self.trace_dir is None:
            return 404, _error_bytes(
                "tracing is disabled (start the daemon with tracing "
                "enabled to use /v1/trace)"
            )
        from repro.obs.traceview import build_timeline

        try:
            data = build_timeline(self.trace_dir, trace_id)
        except ValueError as exc:
            return 404, _error_bytes(str(exc))
        body = json.dumps(data, indent=2, sort_keys=True) + "\n"
        return 200, body.encode("utf-8")

    def log_access(self, method, path, status, duration_ms, meta=None):
        """One structured access-log line (no-op without a sink)."""
        if self.access is None:
            return None
        leader = (meta or {}).get("leader") or {}
        return self.access.log(
            method, path, status, duration_ms,
            trace_id=(meta or {}).get("trace_id"),
            coalesced=bool((meta or {}).get("coalesced")),
            leader_trace_id=leader.get("trace_id"),
        )


def _error_bytes(message):
    return (json.dumps({"error": message}, sort_keys=True) + "\n") \
        .encode("utf-8")


# -- the byte-identical response builders --------------------------------


def _compile_config(config, pipeline, default):
    from repro.compiler import registry
    from repro.compiler.pipeline import parse_spec

    if pipeline is not None:
        return parse_spec(pipeline)
    return registry.resolve(config or default)


def _compile_bytes(benchmark, input_set, scale, config, pipeline):
    """Exactly what ``python -m repro compile`` prints to stdout."""
    from repro.core import DivergeSelector, annotation_io
    from repro.experiments.runner import get_artifacts

    selection = _compile_config(config, pipeline, "all-best-heur")
    artifacts = get_artifacts(benchmark, input_set=input_set, scale=scale)
    selector = DivergeSelector(
        artifacts.program, artifacts.profile, selection
    )
    annotation = selector.select()
    return (annotation_io.dumps(annotation) + "\n").encode("utf-8")


def _simulate_bytes(params, cell_id):
    """One campaign cell's deterministic result as canonical JSON.

    The ``ledger`` key is popped exactly as the campaign scheduler pops
    it before journaling, so the ``result`` object is byte-identical to
    the matching ``cell.finish`` journal record's ``result`` field.
    """
    from repro.campaign.spec import run_cell

    result = run_cell(dict(params))
    if isinstance(result, dict):
        result.pop("ledger", None)
    data = {"cell_id": cell_id, "params": params, "result": result}
    return (canonical_json(data) + "\n").encode("utf-8")


def _explain_bytes(workload, input_set, scale, config, pipeline):
    """Exactly what ``python -m repro explain --json`` prints.

    Mirrors the CLI's config resolution, including its
    case-insensitive preset lookup.
    """
    from repro.compiler import registry
    from repro.compiler.pipeline import parse_spec
    from repro.obs.explain import build_explain

    if pipeline is not None:
        selection = parse_spec(pipeline)
    else:
        selection = registry.resolve((config or "all-best-cost").lower())
    data = build_explain(
        workload, selection, input_set=input_set, scale=scale
    )
    return (json.dumps(data, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")
