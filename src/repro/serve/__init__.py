"""``python -m repro serve`` — the warm-state serving daemon.

Amortizes process startup, decode tables, artifact building, and the
shared :class:`~repro.compiler.AnalysisManager` across many requests:
the daemon holds them as warm process state and answers

- ``POST /v1/compile``  — the annotation JSON ``repro compile`` prints,
- ``POST /v1/simulate`` — one campaign cell's deterministic result,
- ``POST /v1/explain``  — the join ``repro explain --json`` prints,
- ``GET /healthz``      — warm-state and liveness summary,
- ``GET /metrics``      — the registry as OpenMetrics text,

with every ``/v1`` response *byte-identical* to the corresponding CLI
output for the same parameters (see ``docs/serving.md``).  Concurrent
identical requests are coalesced single-flight: one computation runs,
every waiter gets the same bytes, keyed on the same content hashes the
campaign layer uses for cell identity.

Stdlib only — :mod:`http.server` threads, no web framework.
"""

from repro.serve.app import ServeApp, SingleFlight
from repro.serve.daemon import build_server, main

__all__ = ["ServeApp", "SingleFlight", "build_server", "main"]
