#!/usr/bin/env python
"""Quickstart: profile a benchmark, select diverge branches, simulate DMP.

This walks the full pipeline of the paper on one benchmark:

1. load a synthetic SPEC-like workload;
2. run it functionally to get the dynamic trace;
3. profile it (edge/branch/loop profiles with a predictor in the loop);
4. run the profile-driven compiler (All-best-heur) to mark diverge
   branches and CFM points;
5. simulate the baseline processor and the DMP processor;
6. report the speedup.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro.core import SelectionConfig, select_diverge_branches
from repro.emulator import execute
from repro.profiling import Profiler
from repro.uarch import simulate
from repro.workloads import BENCHMARK_NAMES, load_benchmark


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if name not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )

    print(f"== loading {name} (scale {scale}) ==")
    workload = load_benchmark(name, scale=scale)
    print(f"static instructions: {len(workload.program)}")

    print("== functional execution ==")
    trace, result = execute(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    print(f"dynamic instructions: {result.instruction_count:,}")

    print("== profiling ==")
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    print(
        f"branches: {profile.total_branches:,}  "
        f"MPKI: {profile.mpki:.2f}  "
        f"measured Acc_Conf: {profile.measured_acc_conf:.2f}"
    )

    print("== diverge-branch selection (All-best-heur) ==")
    annotation = select_diverge_branches(
        workload.program, profile, SelectionConfig.all_best_heur()
    )
    summary = annotation.summary()
    print(
        f"diverge branches: {summary['total']}  "
        f"by kind: {summary['by_kind']}  "
        f"avg CFM points: {summary['avg_cfm_points']:.2f}"
    )
    for branch in annotation:
        cfms = [p.pc if p.pc is not None else "ret" for p in branch.cfm_points]
        flags = " always" if branch.always_predicate else ""
        print(
            f"  pc {branch.branch_pc:5d}  {branch.kind.value:10s} "
            f"CFM {cfms}{flags}"
        )

    print("== timing simulation ==")
    baseline = simulate(workload.program, trace, label=f"{name}/baseline")
    dmp = simulate(
        workload.program, trace, annotation=annotation, label=f"{name}/dmp"
    )
    print(baseline.report())
    print(dmp.report())
    print(
        f"\nDMP speedup over baseline: "
        f"{dmp.speedup_over(baseline) * 100:+.1f}%  "
        f"(flushes {baseline.pipeline_flushes} -> {dmp.pipeline_flushes})"
    )


if __name__ == "__main__":
    main()
