#!/usr/bin/env python
"""Run the DMP compiler on a hand-written assembly program.

Shows the toolchain as a compiler writer sees it: author a program in
the textual assembly, feed it data that makes one branch hard to
predict, and inspect exactly which branches each selection algorithm
marks and why (including the cost-benefit model's per-branch verdicts).

Run:  python examples/custom_program.py
"""

import random

from repro.core import DivergeSelector, SelectionConfig
from repro.core.thresholds import SelectionThresholds
from repro.emulator import execute
from repro.isa import assemble
from repro.profiling import Profiler
from repro.uarch import simulate

PROGRAM = """
; A word-processing kernel: for each input word, a hard hammock with a
; rare error path (a frequently-hammock), a tiny unpredictable flag
; check (a short hammock), and a scan loop with data-driven length
; (a diverge loop).
.func main
    movi r1, 0            ; index
    movi r2, 600          ; word count
outer:
    cmpge r4, r1, r2
    bnez r4, finish
    mov r5, r1
    ld r3, 0(r5)          ; the input word

    ; --- frequently-hammock: classify the word -------------------
    and r6, r3, 1
    bnez r6, classify_b
    addi r20, r20, 1
    addi r21, r21, 3
    addi r20, r20, 2
    jmp classified
classify_b:
    addi r22, r22, 1
    addi r23, r23, 3
    and r7, r3, 2
    beqz r7, classified   ; rare malformed-word path
    call report_error
classified:
    addi r24, r24, 1

    ; --- short hammock: parity flag ------------------------------
    and r8, r3, 4
    beqz r8, no_flag
    addi r25, r25, 1
no_flag:
    xor r26, r26, 1

    ; --- diverge loop: scan a variable number of characters ------
    shr r9, r3, 3
    and r9, r9, 7
    addi r9, r9, 1        ; 1..8 characters
scan:
    addi r27, r27, 1
    addi r9, r9, -1
    bnez r9, scan

    addi r1, r1, 1
    jmp outer
finish:
    halt
.endfunc

.func report_error
    addi r40, r40, 1
    addi r41, r41, 1
    addi r42, r42, 1
    addi r43, r43, 1
    ret
.endfunc
"""


def make_inputs(n=600, seed=7):
    rng = random.Random(seed)
    memory = {}
    for i in range(n):
        classify = rng.randrange(2)            # hard: 50/50
        malformed = 1 if rng.random() < 0.05 else 0
        flag = rng.randrange(2)                # hard: 50/50
        length = rng.randrange(8)              # 1..8 scan chars
        memory[i] = classify | (malformed << 1) | (flag << 2) | (length << 3)
    return memory


def main():
    program = assemble(PROGRAM, name="word-kernel")
    memory = make_inputs()
    print(program.disassemble())

    profile = Profiler().profile(program, memory=memory)
    print(f"\nMPKI during profiling: {profile.mpki:.2f}")
    print("hardest branches:")
    bp = profile.branch_profile
    hardest = sorted(
        profile.edge_profile.executed_branch_pcs(),
        key=bp.misprediction_rate,
        reverse=True,
    )[:5]
    for pc in hardest:
        print(
            f"  pc {pc:3d}: {program[pc].format():20s} "
            f"misp {bp.misprediction_rate(pc):5.1%} "
            f"exec {bp.exec_count(pc)}"
        )

    print("\n== selections by algorithm ==")
    for label, config in [
        ("Alg-exact", SelectionConfig(enable_freq=False)),
        ("Alg-exact + Alg-freq", SelectionConfig()),
        ("All-best-heur", SelectionConfig.all_best_heur()),
        ("All-best-cost", SelectionConfig.all_best_cost()),
    ]:
        selector = DivergeSelector(program, profile, config)
        annotation = selector.select()
        marks = ", ".join(
            f"{b.branch_pc}:{b.kind.value}"
            + ("(always)" if b.always_predicate else "")
            for b in annotation
        )
        print(f"  {label:22s} -> {marks or '(none)'}")
        if config.cost_model:
            for report in selector.cost_reports:
                verdict = "select" if report.selected else "reject"
                print(
                    f"      cost[{report.branch_pc:3d}] "
                    f"overhead={report.dpred_overhead:6.2f} "
                    f"cost={report.dpred_cost:+7.2f} -> {verdict}"
                )

    print("\n== timing ==")
    trace, _ = execute(program, memory=memory)
    baseline = simulate(program, trace, label="baseline")
    annotation = DivergeSelector(
        program, profile, SelectionConfig.all_best_heur()
    ).select()
    dmp = simulate(program, trace, annotation=annotation, label="dmp")
    print(baseline.report())
    print(dmp.report())
    print(f"\nspeedup: {dmp.speedup_over(baseline) * 100:+.1f}%")


if __name__ == "__main__":
    main()
