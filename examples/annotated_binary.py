#!/usr/bin/env python
"""The paper's §6.1 toolflow with real file artifacts.

"The result of our analysis is a list of diverge branches and CFM
points that is attached to the binary and passed to a cycle-accurate
execution-driven performance simulator."  This example does exactly
that, through files:

1. encode a benchmark program into a `.dmpb` binary image;
2. profile it and run the selection compiler;
3. save the diverge-branch annotation as JSON next to the binary;
4. in a "different process" (simulated by reloading everything from
   disk), decode the binary, load + validate the annotation, and run
   the DMP timing simulation.

Run:  python examples/annotated_binary.py [benchmark]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import SelectionConfig, annotation_io, select_diverge_branches
from repro.emulator import execute
from repro.isa.encoding import decode_program, encode_program
from repro.profiling import Profiler
from repro.uarch import simulate
from repro.workloads import load_benchmark


def compile_side(workdir, name):
    """The 'compiler' process: produce binary + annotation files."""
    workload = load_benchmark(name, scale=0.5)
    binary_path = workdir / f"{name}.dmpb"
    marks_path = workdir / f"{name}.marks.json"

    binary_path.write_bytes(encode_program(workload.program))
    profile = Profiler().profile(
        workload.program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    annotation = select_diverge_branches(
        workload.program, profile, SelectionConfig.all_best_heur()
    )
    annotation_io.save(annotation, marks_path)
    print(f"compiler: wrote {binary_path.name} "
          f"({binary_path.stat().st_size} bytes) and {marks_path.name} "
          f"({len(annotation)} diverge branches)")
    return binary_path, marks_path, workload


def simulator_side(binary_path, marks_path, workload):
    """The 'simulator' process: consume the files, run baseline + DMP."""
    program = decode_program(binary_path.read_bytes(),
                             name=binary_path.stem)
    annotation = annotation_io.load(marks_path)
    problems = annotation_io.validate_against_program(annotation, program)
    if problems:
        raise SystemExit(f"annotation invalid: {problems}")
    print(f"simulator: loaded {len(program)} instructions, "
          f"{len(annotation)} marks validated")

    trace, _ = execute(
        program,
        memory=workload.memory,
        max_instructions=workload.max_instructions,
    )
    baseline = simulate(program, trace, label="baseline")
    dmp = simulate(program, trace, annotation=annotation, label="dmp")
    print(baseline.report())
    print(dmp.report())
    print(f"speedup: {dmp.speedup_over(baseline) * 100:+.1f}%")


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "go"
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        binary_path, marks_path, workload = compile_side(workdir, name)
        simulator_side(binary_path, marks_path, workload)


if __name__ == "__main__":
    main()
