#!/usr/bin/env python
"""Reproduce the §7.3 input-set sensitivity study on a few benchmarks.

Profiles each benchmark on its *train* input set, runs it on the
*reduced* one (the paper's methodology for "diff"), and compares both
the performance and the selected diverge-branch sets against
profiling on the run input itself ("same").

Run:  python examples/input_set_sensitivity.py [scale]
"""

import sys

from repro.core import DivergeSelector, SelectionConfig
from repro.experiments.runner import get_artifacts, run_annotated, run_baseline

BENCHMARKS = ("gap", "mcf", "crafty", "gzip", "twolf")


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    config = SelectionConfig.all_best_heur()

    print(f"{'benchmark':10s} {'same':>8s} {'diff':>8s} "
          f"{'overlap':>8s}  selection delta")
    for name in BENCHMARKS:
        run_art = get_artifacts(name, "reduced", scale)
        train_art = get_artifacts(name, "train", scale)
        baseline = run_baseline(name, scale=scale)

        ann_same = DivergeSelector(
            run_art.program, run_art.profile, config
        ).select()
        ann_diff = DivergeSelector(
            run_art.program, train_art.profile, config
        ).select()

        stats_same = run_annotated(name, ann_same, scale=scale)
        stats_diff = run_annotated(name, ann_diff, scale=scale)

        pcs_same = {b.branch_pc for b in ann_same}
        pcs_diff = {b.branch_pc for b in ann_diff}
        union = pcs_same | pcs_diff
        overlap = len(pcs_same & pcs_diff) / len(union) if union else 1.0
        only_same = sorted(pcs_same - pcs_diff)
        only_diff = sorted(pcs_diff - pcs_same)
        delta = (
            f"only-run={only_same} only-train={only_diff}"
            if only_same or only_diff
            else "(identical)"
        )
        print(
            f"{name:10s} "
            f"{stats_same.speedup_over(baseline) * 100:+7.1f}% "
            f"{stats_diff.speedup_over(baseline) * 100:+7.1f}% "
            f"{overlap * 100:7.1f}%  {delta}"
        )

    print(
        "\nThe run-time confidence gate makes DMP robust to the "
        "profiling input:\neven where the selected sets differ, only "
        "low-confidence instances are\npredicated, so performance "
        "barely moves (paper: 0.5% average loss)."
    )


if __name__ == "__main__":
    main()
