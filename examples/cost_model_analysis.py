#!/usr/bin/env python
"""Explore the §4/§5.1 analytical cost-benefit model.

Plots (as text) how the dynamic-predication cost of a hammock varies
with its size, merge probability, and the confidence estimator's
accuracy — the trade-offs behind Equations (1)-(20) — and evaluates
the loop model's four outcome cases.

Run:  python examples/cost_model_analysis.py
"""

from repro.core.cost_model import (
    CostModelParams,
    LoopCaseProbabilities,
    dpred_cost,
    loop_dpred_cost,
)


def bar(value, scale=2.0, width=30):
    clipped = max(-width, min(width, int(value * scale)))
    if clipped >= 0:
        return " " * width + "|" + "#" * clipped
    return " " * (width + clipped) + "#" * (-clipped) + "|"


def hammock_sweep():
    print("== hammock dpred_cost vs useless instructions ==")
    print("   (negative = profitable to predicate; Acc_Conf = 40%)")
    params = CostModelParams()
    for useless in (4, 8, 16, 32, 48, 64, 80, 96, 128, 160):
        overhead = useless / params.fetch_width
        cost = dpred_cost(overhead, params)
        print(f"  useless={useless:4d}  cost={cost:+7.2f} {bar(cost)}")
    breakeven = params.misp_penalty * params.acc_conf * params.fetch_width
    print(f"  break-even useless instructions: {breakeven:.0f}")


def merge_prob_sweep():
    print("\n== frequently-hammock cost vs merge probability ==")
    print("   (16 useless insts when merging; dual-path when not)")
    params = CostModelParams()
    for merge in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
        overhead = merge * (16 / params.fetch_width) + (1 - merge) * (
            params.resolution / 2
        )
        cost = dpred_cost(overhead, params)
        print(f"  P(merge)={merge:4.2f}  cost={cost:+7.2f} {bar(cost)}")


def acc_conf_sweep():
    print("\n== sensitivity to confidence-estimator accuracy (PVN) ==")
    print("   (the paper reports the model is stable over 20%-50%)")
    for acc in (0.15, 0.20, 0.30, 0.40, 0.50):
        params = CostModelParams(acc_conf=acc)
        cost = dpred_cost(16 / 8, params)
        print(f"  Acc_Conf={acc:4.2f}  cost={cost:+7.2f} {bar(cost)}")


def loop_cases():
    print("\n== diverge-loop model: who pays, who benefits ==")
    params = CostModelParams()
    scenarios = [
        ("mostly late exits (good loop)",
         LoopCaseProbabilities(correct=0.45, early_exit=0.05,
                               late_exit=0.45, no_exit=0.05)),
        ("balanced",
         LoopCaseProbabilities(correct=0.55, early_exit=0.15,
                               late_exit=0.20, no_exit=0.10)),
        ("high-iteration loop (mostly no-exit)",
         LoopCaseProbabilities(correct=0.50, early_exit=0.05,
                               late_exit=0.05, no_exit=0.40)),
    ]
    for label, probs in scenarios:
        cost = loop_dpred_cost(
            loop_body_size=12,
            n_select_uops=3,
            dpred_iter=4,
            dpred_extra_iter=2,
            case_probs=probs,
            params=params,
        )
        print(f"  {label:40s} cost={cost:+7.2f} {bar(cost)}")
    print(
        "\n  -> exactly the §5.2 heuristics: small bodies, few "
        "iterations,\n     and low no-exit probability make loops "
        "worth predicating."
    )


def main():
    hammock_sweep()
    merge_prob_sweep()
    acc_conf_sweep()
    loop_cases()


if __name__ == "__main__":
    main()
